"""Property-based cross-validation on random STGs *with choice*.

The randomised tests in ``test_properties_symbolic.py`` cover marked
graphs (pure concurrency).  Here random free-choice controllers are
generated: one choice place selects between several input bursts, each
burst optionally followed by an output pulse.  These specifications
exercise conflicts, repeated codes and (sometimes) CSC violations, and
the explicit and symbolic engines must agree on every verdict.
"""

from hypothesis import given, settings, strategies as st

from repro.core.consistency import check_consistency as symbolic_consistency
from repro.core.csc import check_csc as symbolic_csc
from repro.core.encoding import SymbolicEncoding
from repro.core.fake_conflicts import classify_conflicts as symbolic_conflicts
from repro.core.image import SymbolicImage
from repro.core.persistency import check_signal_persistency as symbolic_persistency
from repro.core.traversal import symbolic_traversal
from repro.sg import build_state_graph
from repro.sg.csc import check_csc as explicit_csc
from repro.sg.fake_conflicts import classify_conflicts as explicit_conflicts
from repro.sg.persistency import check_signal_persistency as explicit_persistency
from repro.stg import STG, SignalKind


@st.composite
def choice_controllers(draw):
    """A free-choice place selecting between 2-3 branches.

    Branch ``i`` raises and lowers its own input ``r<i>``; with probability
    ~1/2 the shared output ``g`` pulses between the request and its
    release.  Reusing the same output in several branches (with different
    occurrence indices) keeps the specification consistent while freely
    producing repeated codes and occasionally interesting CSC situations.
    """
    num_branches = draw(st.integers(min_value=2, max_value=3))
    with_output = [draw(st.booleans()) for _ in range(num_branches)]
    if not any(with_output):
        with_output[0] = True  # keep at least one non-input signal
    stg = STG("random_choice")
    stg.add_signal("g", SignalKind.OUTPUT, initial_value=False)
    for index in range(num_branches):
        stg.add_signal(f"r{index}", SignalKind.INPUT, initial_value=False)
    choice = stg.add_place("p_choice", tokens=1)
    output_occurrence = 0
    for index in range(num_branches):
        request = f"r{index}"
        entry = stg.ensure_transition(f"{request}+")
        stg.add_arc(choice, entry)
        if with_output[index]:
            output_occurrence += 1
            suffix = "" if output_occurrence == 1 else f"/{output_occurrence}"
            stg.connect(f"{request}+", f"g+{suffix}")
            stg.connect(f"g+{suffix}", f"{request}-")
            stg.connect(f"{request}-", f"g-{suffix}")
            exit_transition = stg.ensure_transition(f"g-{suffix}")
        else:
            stg.connect(f"{request}+", f"{request}-")
            exit_transition = stg.ensure_transition(f"{request}-")
        stg.add_arc(exit_transition, choice)
    return stg


def symbolic_setup(stg):
    encoding = SymbolicEncoding(stg)
    image = SymbolicImage(encoding)
    reached, stats = symbolic_traversal(encoding, image=image)
    return encoding, image, reached, stats


class TestChoiceControllersCrossValidation:
    @settings(max_examples=25, deadline=None)
    @given(stg=choice_controllers())
    def test_state_counts_and_consistency_agree(self, stg):
        explicit = build_state_graph(stg)
        encoding, image, reached, stats = symbolic_setup(stg)
        assert explicit.consistent
        assert symbolic_consistency(encoding, reached, image.charfun).consistent
        assert stats.num_states == explicit.graph.num_states

    @settings(max_examples=25, deadline=None)
    @given(stg=choice_controllers())
    def test_persistency_verdicts_agree(self, stg):
        explicit_graph = build_state_graph(stg).graph
        encoding, image, reached, _ = symbolic_setup(stg)
        explicit_result = explicit_persistency(explicit_graph, stg)
        symbolic_result = symbolic_persistency(encoding, reached, image)
        assert explicit_result.persistent == symbolic_result.persistent

    @settings(max_examples=25, deadline=None)
    @given(stg=choice_controllers())
    def test_csc_verdicts_agree(self, stg):
        explicit_graph = build_state_graph(stg).graph
        encoding, image, reached, _ = symbolic_setup(stg)
        assert explicit_csc(explicit_graph, stg).csc == \
            symbolic_csc(encoding, reached, image.charfun).csc

    @settings(max_examples=20, deadline=None)
    @given(stg=choice_controllers())
    def test_fake_conflict_classification_agrees(self, stg):
        explicit_result = explicit_conflicts(stg)
        encoding, image, reached, _ = symbolic_setup(stg)
        symbolic_result = symbolic_conflicts(encoding, reached, image)
        assert explicit_result.fake_free(stg) == symbolic_result.fake_free(stg)
        explicit_pairs = {(c.first, c.second)
                          for c in explicit_result.classifications if c.is_real}
        symbolic_pairs = {(c.first, c.second)
                          for c in symbolic_result.classifications if c.is_real}
        assert explicit_pairs == symbolic_pairs
