"""Tests of the shared verification pipeline.

The point of :class:`repro.core.pipeline.VerificationPipeline` is that the
encoding / image / reachable-BDD chain is computed once and shared by all
property checks, so these tests pin the caching behaviour as well as the
equivalence with the :class:`ImplementabilityChecker` facade.
"""


from repro import corpus
from repro.core import ImplementabilityChecker, VerificationPipeline
from repro.core import pipeline as pipeline_module
from repro.stg.generators import handshake, mutex_element, vme_read_cycle


class TestSharedChain:
    def test_chain_objects_are_stable(self):
        pipeline = VerificationPipeline(handshake())
        assert pipeline.encoding is pipeline.encoding
        assert pipeline.image is pipeline.image
        assert pipeline.reached is pipeline.reached
        assert pipeline.image.encoding is pipeline.encoding

    def test_traversal_runs_exactly_once(self, monkeypatch):
        calls = []
        original = pipeline_module.symbolic_traversal

        def counting(*args, **kwargs):
            calls.append(1)
            return original(*args, **kwargs)

        monkeypatch.setattr(pipeline_module, "symbolic_traversal", counting)
        pipeline = VerificationPipeline(vme_read_cycle())
        pipeline.consistency()
        pipeline.csc()
        pipeline.signal_persistency()
        pipeline.deadlock_freedom()
        pipeline.run(include_liveness=True)
        assert len(calls) == 1

    def test_property_results_are_cached(self):
        pipeline = VerificationPipeline(handshake())
        assert pipeline.consistency() is pipeline.consistency()
        assert pipeline.csc() is pipeline.csc()

    def test_traversal_stats_available(self):
        pipeline = VerificationPipeline(handshake())
        assert pipeline.traversal_stats.num_states == 4


class TestRunReport:
    def test_matches_checker_facade(self):
        stg = vme_read_cycle()
        via_pipeline = VerificationPipeline(stg).run().as_dict()
        via_checker = ImplementabilityChecker(stg).check().as_dict()
        via_pipeline.pop("timings")
        via_checker.pop("timings")
        assert via_pipeline == via_checker

    def test_checker_exposes_its_pipeline(self):
        checker = ImplementabilityChecker(handshake())
        assert checker.pipeline is None
        report = checker.check()
        assert isinstance(checker.pipeline, VerificationPipeline)
        # The chain is reusable after check() without another traversal.
        assert checker.pipeline.traversal_stats.num_states == report.num_states

    def test_checker_config_is_read_at_call_time(self):
        checker = ImplementabilityChecker(mutex_element())
        assert checker.check().output_persistent is False
        checker.arbitration_places = ["p_me"]
        assert checker.check().output_persistent is True

    def test_liveness_fields_filled_only_on_request(self):
        stg = handshake()
        plain = VerificationPipeline(stg).run()
        assert plain.deadlock_free is None and plain.reversible is None
        live = VerificationPipeline(stg).run(include_liveness=True)
        assert live.deadlock_free is True
        assert live.reversible is True
        assert "live" in live.timings

    def test_arbitration_places_are_honoured(self):
        stg = mutex_element()
        tolerant = VerificationPipeline(stg, arbitration_places=["p_me"]).run()
        strict = VerificationPipeline(stg).run()
        assert tolerant.output_persistent is True
        assert strict.output_persistent is False

    def test_initial_values_override_copies_the_stg(self):
        stg = handshake()
        pipeline = VerificationPipeline(stg, initial_values={"r": False})
        assert pipeline.stg is not stg
        assert pipeline.run().consistent is True


class TestCorpusSweep:
    """The pipeline is the engine behind `stg-check batch-check`."""

    def test_full_corpus_matches_metadata(self):
        for name in corpus.names():
            entry = corpus.entry(name)
            pipeline = VerificationPipeline(
                corpus.load(name),
                arbitration_places=entry.arbitration_places)
            report = pipeline.run(include_liveness=True)
            assert entry.mismatches(report) == [], name
