"""Property-based cross-validation of the symbolic engine (hypothesis).

Random safe, consistent STGs are generated as collections of 4-phase
coupling cycles between randomly chosen signal pairs (the same building
block as the Muller pipeline).  For every generated specification the
symbolic engine must agree with the explicit enumeration on the state
count and on every property verdict.
"""

from hypothesis import given, settings, strategies as st

from repro.core.consistency import check_consistency as symbolic_consistency
from repro.core.csc import check_csc as symbolic_csc
from repro.core.encoding import SymbolicEncoding
from repro.core.image import SymbolicImage
from repro.core.persistency import check_signal_persistency as symbolic_persistency
from repro.core.traversal import symbolic_traversal
from repro.sg import build_state_graph
from repro.sg.csc import check_csc as explicit_csc
from repro.sg.persistency import check_signal_persistency as explicit_persistency
from repro.stg import STG, SignalKind


@st.composite
def coupled_stgs(draw):
    """Random interconnections of 4-phase coupling cycles.

    Signals ``s0 .. s<n-1>``; signal 0 is an input, the rest are outputs.
    Each coupling between signals x and y adds the cycle
    ``x+ -> y+ -> x- -> y- -> x+`` with the token on the last arc, so the
    all-zero initial state is consistent by construction.
    """
    num_signals = draw(st.integers(min_value=2, max_value=5))
    names = [f"s{i}" for i in range(num_signals)]
    stg = STG("random_coupled")
    for index, name in enumerate(names):
        kind = SignalKind.INPUT if index == 0 else SignalKind.OUTPUT
        stg.add_signal(name, kind, initial_value=False)
    # Always couple consecutive signals so every signal has transitions,
    # then add a few random extra couplings.
    couplings = {(i, i + 1) for i in range(num_signals - 1)}
    extra = draw(st.lists(
        st.tuples(st.integers(0, num_signals - 1),
                  st.integers(0, num_signals - 1)),
        max_size=3))
    for first, second in extra:
        if first != second:
            couplings.add((min(first, second), max(first, second)))
    for first, second in sorted(couplings):
        x, y = names[first], names[second]
        stg.connect(f"{x}+", f"{y}+")
        stg.connect(f"{y}+", f"{x}-")
        stg.connect(f"{x}-", f"{y}-")
        stg.connect(f"{y}-", f"{x}+", tokens=1)
    return stg


class TestRandomisedCrossValidation:
    @settings(max_examples=20, deadline=None)
    @given(stg=coupled_stgs())
    def test_state_counts_agree(self, stg):
        explicit = build_state_graph(stg).graph
        encoding = SymbolicEncoding(stg)
        _, stats = symbolic_traversal(encoding)
        assert stats.num_states == explicit.num_states

    @settings(max_examples=15, deadline=None)
    @given(stg=coupled_stgs())
    def test_consistency_and_persistency_hold(self, stg):
        # Coupling cycles are marked graphs: always consistent + persistent.
        explicit = build_state_graph(stg)
        assert explicit.consistent
        encoding = SymbolicEncoding(stg)
        image = SymbolicImage(encoding)
        reached, _ = symbolic_traversal(encoding, image=image)
        assert symbolic_consistency(encoding, reached, image.charfun).consistent
        assert symbolic_persistency(encoding, reached, image).persistent
        assert explicit_persistency(explicit.graph, stg).persistent

    @settings(max_examples=15, deadline=None)
    @given(stg=coupled_stgs())
    def test_csc_verdicts_agree(self, stg):
        explicit = build_state_graph(stg).graph
        encoding = SymbolicEncoding(stg)
        image = SymbolicImage(encoding)
        reached, _ = symbolic_traversal(encoding, image=image)
        assert symbolic_csc(encoding, reached, image.charfun).csc == \
            explicit_csc(explicit, stg).csc

    @settings(max_examples=15, deadline=None)
    @given(stg=coupled_stgs(),
           ordering=st.sampled_from(["force", "structural", "declaration"]))
    def test_ordering_does_not_change_state_count(self, stg, ordering):
        explicit = build_state_graph(stg).graph
        encoding = SymbolicEncoding(stg, ordering=ordering)
        _, stats = symbolic_traversal(encoding)
        assert stats.num_states == explicit.num_states
