"""Tests for symbolic deadlock detection and reversibility."""

import pytest

from repro.core.deadlock import (
    check_deadlock_freedom,
    check_reversibility,
    deadlock_states,
)
from repro.core.encoding import SymbolicEncoding
from repro.core.image import SymbolicImage
from repro.core.traversal import symbolic_traversal
from repro.petri import build_reachability_graph
from repro.stg.generators import (
    fake_conflict_d1,
    handshake,
    master_read,
    muller_pipeline,
    mutex_element,
    output_disabled_by_input,
    vme_read_cycle,
)


def setup(stg):
    encoding = SymbolicEncoding(stg)
    image = SymbolicImage(encoding)
    reached, _ = symbolic_traversal(encoding, image=image)
    return encoding, image, reached


class TestDeadlocks:
    @pytest.mark.parametrize("factory", [
        handshake, mutex_element, vme_read_cycle,
        lambda: muller_pipeline(4), lambda: master_read(3),
    ], ids=["handshake", "mutex", "vme", "pipeline4", "master_read3"])
    def test_live_specifications_are_deadlock_free(self, factory):
        stg = factory()
        encoding, image, reached = setup(stg)
        result = check_deadlock_freedom(encoding, reached, image.charfun)
        assert result.deadlock_free
        assert deadlock_states(encoding, reached, image.charfun).is_false()

    def test_one_shot_specification_has_deadlocks(self):
        stg = fake_conflict_d1()   # acyclic: ends after c+
        encoding, image, reached = setup(stg)
        result = check_deadlock_freedom(encoding, reached, image.charfun)
        assert not result.deadlock_free
        assert result.num_deadlocks == 1
        assert result.witness is not None
        # The witness is the final state with all three signals high.
        assert result.witness["code"] == {"a": True, "b": True, "c": True}

    def test_deadlock_count_matches_explicit(self):
        stg = output_disabled_by_input()
        encoding, image, reached = setup(stg)
        symbolic = check_deadlock_freedom(encoding, reached, image.charfun)
        explicit = build_reachability_graph(stg.net).deadlocks()
        assert symbolic.num_deadlocks == len(explicit)

    def test_string_rendering(self):
        stg = handshake()
        encoding, image, reached = setup(stg)
        assert "deadlock-free" in str(
            check_deadlock_freedom(encoding, reached, image.charfun))


class TestReversibility:
    @pytest.mark.parametrize("factory", [
        handshake, mutex_element, vme_read_cycle, lambda: muller_pipeline(3),
    ], ids=["handshake", "mutex", "vme", "pipeline3"])
    def test_cyclic_specifications_are_reversible(self, factory):
        stg = factory()
        encoding, image, reached = setup(stg)
        result = check_reversibility(encoding, reached, image)
        assert result.reversible

    def test_acyclic_specification_is_not_reversible(self):
        stg = fake_conflict_d1()
        encoding, image, reached = setup(stg)
        result = check_reversibility(encoding, reached, image)
        assert not result.reversible
        # Every non-initial state cannot come back (the net never returns).
        assert result.num_unreturnable == 4

    def test_rendering(self):
        stg = handshake()
        encoding, image, reached = setup(stg)
        assert "reversible" in str(check_reversibility(encoding, reached, image))
