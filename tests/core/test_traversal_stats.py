"""The traversal-statistics extensions: timing, live nodes, cache rates."""

from repro.core.pipeline import VerificationPipeline
from repro.core.stats import TraversalStats
from repro.stg.generators import build_example


def traversed_pipeline():
    pipeline = VerificationPipeline(build_example("muller_pipeline", 5))
    pipeline.reached
    return pipeline


class TestNewCounters:
    def test_traversal_populates_the_new_fields(self):
        stats = traversed_pipeline().traversal_stats
        assert stats.wall_time_s > 0.0
        assert stats.peak_live_nodes >= stats.peak_nodes
        assert stats.cache_lookups > 0
        assert 0.0 <= stats.cache_hit_rate <= 1.0
        assert stats.cache_hits <= stats.cache_lookups

    def test_round_trip_preserves_every_field(self):
        stats = traversed_pipeline().traversal_stats
        assert TraversalStats.from_dict(stats.to_dict()) == stats

    def test_round_trip_preserves_mixed_value_types(self):
        # The schema mixes ints and floats (wall_time_s); the round trip
        # must preserve both values and their types, not coerce.
        stats = TraversalStats(iterations=7, images_computed=21,
                               peak_nodes=130, final_nodes=101,
                               num_variables=18, num_states=96,
                               wall_time_s=0.125, peak_live_nodes=412,
                               cache_lookups=1000, cache_hits=247)
        rebuilt = TraversalStats.from_dict(stats.to_dict())
        assert rebuilt == stats
        assert isinstance(rebuilt.wall_time_s, float)
        assert rebuilt.wall_time_s == 0.125
        assert isinstance(rebuilt.iterations, int)
        assert isinstance(rebuilt.cache_lookups, int)
        assert rebuilt.cache_hit_rate == 0.247

    def test_from_dict_tolerates_records_without_the_new_fields(self):
        # Records persisted by older kernels keep loading.
        old = {"iterations": 3, "images_computed": 12, "peak_nodes": 40,
               "final_nodes": 38, "num_variables": 10, "num_states": 16}
        stats = TraversalStats.from_dict(old)
        assert stats.iterations == 3
        assert stats.wall_time_s == 0.0
        assert stats.peak_live_nodes == 0
        assert stats.cache_hit_rate == 0.0

    def test_as_dict_reports_the_harness_columns(self):
        row = traversed_pipeline().traversal_stats.as_dict()
        assert row["wall_s"] > 0
        assert row["live_peak"] > 0
        assert 0.0 <= row["hit_rate"] <= 1.0
