"""Executable versions of the paper's worked material.

* Section 4 walks through the computation of ``delta_N(M, t)`` on the
  Petri net of Figure 1 by cofactoring with ``E(t)``, multiplying by
  ``NPM(t)``, cofactoring with ``NSM(t)`` and multiplying by ``ASM(t)``.
  The test replays each intermediate step on the mutual-exclusion net and
  checks it against the explicitly fired markings.
* Figure 2 relates the reachability graph, the state graph and the full
  state graph of the same element.
* Figure 3 relates the conflict-based specification D1 and the concurrent
  specification D2 through their (identical) signal behaviour.
"""

import pytest

from repro.core.charfun import CharacteristicFunctions
from repro.core.encoding import SymbolicEncoding
from repro.core.image import SymbolicImage
from repro.core.traversal import symbolic_traversal
from repro.petri import build_reachability_graph
from repro.sg import build_state_graph
from repro.sg.traces import bounded_trace_equivalent
from repro.stg.generators import fake_conflict_d1, fake_conflict_d2, mutex_element


@pytest.fixture
def mutex():
    stg = mutex_element()
    encoding = SymbolicEncoding(stg)
    charfun = CharacteristicFunctions(encoding)
    image = SymbolicImage(encoding, charfun)
    return stg, encoding, charfun, image


class TestSection4WorkedExample:
    """Step-by-step delta_N computation on the Figure 1 net."""

    def test_characteristic_function_of_marking_set(self, mutex):
        stg, encoding, _, _ = mutex
        reach = build_reachability_graph(stg.net)
        markings = reach.markings[:5]
        chi = encoding.markings_to_function(markings)
        assert chi.sat_count(care_vars=encoding.place_variables) == 5
        for marking in markings:
            assert encoding.marking_minterm(marking) <= chi

    def test_delta_n_pipeline_steps(self, mutex):
        stg, encoding, charfun, image = mutex
        transition = "r1+"
        reach = build_reachability_graph(stg.net)
        enabled_markings = [m for m in reach.markings
                            if stg.net.is_enabled(transition, m)]
        disabled_markings = [m for m in reach.markings
                             if not stg.net.is_enabled(transition, m)]
        chi = encoding.markings_to_function(
            enabled_markings[:3] + disabled_markings[:3])

        # Step 1: the cofactor w.r.t. E(t) selects the markings enabling t
        # and removes the predecessor places from the support.
        step1 = chi.cofactor(charfun.enabled_literals(transition))
        predecessor_vars = {encoding.place_variable(p)
                            for p in stg.net.preset_of_transition(transition)}
        assert not predecessor_vars & set(step1.support())

        # Step 2: the product with NPM(t) removes the tokens.
        step2 = step1 & charfun.no_predecessor_marked(transition)
        for variable in predecessor_vars:
            assert (step2 & encoding.manager.var(variable)).is_false()

        # Step 3+4: cofactor w.r.t. NSM(t), product with ASM(t) adds the
        # tokens to every successor place.
        step3 = step2.cofactor(charfun.no_successor_literals(transition))
        step4 = step3 & charfun.all_successors_marked(transition)
        successor_vars = {encoding.place_variable(p)
                          for p in stg.net.postset_of_transition(transition)}
        for variable in successor_vars:
            assert step4 <= encoding.manager.var(variable)

        # The full pipeline equals the explicitly fired marking set.
        expected = encoding.markings_to_function(
            [stg.net.fire(transition, m) for m in enabled_markings[:3]])
        assert image.fire_net(chi, transition) == expected
        assert step4 == expected

    def test_delta_n_of_disabled_set_is_empty(self, mutex):
        stg, encoding, charfun, image = mutex
        reach = build_reachability_graph(stg.net)
        disabled = [m for m in reach.markings
                    if not stg.net.is_enabled("g1+", m)]
        chi = encoding.markings_to_function(disabled)
        assert image.fire_net(chi, "g1+").is_false()


class TestFigure2StateModels:
    """Reachability graph vs state graph vs full state graph."""

    def test_marking_and_state_counts(self):
        stg = mutex_element()
        reach = build_reachability_graph(stg.net)
        full = build_state_graph(stg).graph
        # For this specification every marking induces exactly one code.
        assert full.num_states == reach.num_markings
        assert full.distinct_codes() == full.num_states

    def test_symbolic_traversal_matches_both(self):
        stg = mutex_element()
        encoding = SymbolicEncoding(stg)
        reached, stats = symbolic_traversal(encoding)
        reach = build_reachability_graph(stg.net)
        assert stats.num_states == reach.num_markings
        markings_only = reached.exist(encoding.signal_variables)
        assert markings_only.sat_count(
            care_vars=encoding.place_variables) == reach.num_markings

    def test_grants_are_mutually_exclusive_in_every_state(self):
        stg = mutex_element()
        full = build_state_graph(stg).graph
        for state in full.states:
            assert not (state.value_of("g1") and state.value_of("g2"))


class TestFigure3Equivalence:
    """D1 (conflict form) and D2 (concurrent form) have the same behaviour."""

    def test_same_signal_traces(self):
        d1, d2 = fake_conflict_d1(), fake_conflict_d2()
        g1 = build_state_graph(d1).graph
        g2 = build_state_graph(d2).graph
        assert bounded_trace_equivalent(g1, d1, g2, d2, ["a", "b", "c"], 6)

    def test_same_code_sets(self):
        d1, d2 = fake_conflict_d1(), fake_conflict_d2()
        g1 = build_state_graph(d1).graph
        g2 = build_state_graph(d2).graph
        codes1 = {s.code_string(["a", "b", "c"]) for s in g1.states}
        codes2 = {s.code_string(["a", "b", "c"]) for s in g2.states}
        assert codes1 == codes2 == {"000", "100", "010", "110", "111"}

    def test_signal_enabling_agrees_per_code(self):
        d1, d2 = fake_conflict_d1(), fake_conflict_d2()
        g1 = build_state_graph(d1).graph
        g2 = build_state_graph(d2).graph

        def enabling_by_code(graph, stg):
            result = {}
            for state in graph.states:
                code = state.code_string(["a", "b", "c"])
                result.setdefault(code, set()).update(
                    graph.enabled_signals(state))
            return result

        assert enabling_by_code(g1, d1) == enabling_by_code(g2, d2)
