"""Round-trip tests of the shared result schema.

``to_dict``/``from_dict`` on :class:`repro.core.stats.TraversalStats` and
:class:`repro.report.ImplementabilityReport` is the one schema used by
the sweep runner's worker pipes, the persistent RunStore and the CLI's
``--json`` report; these tests pin the round trip exactly.
"""

import json

from repro.core.pipeline import VerificationPipeline
from repro.core.stats import TraversalStats
from repro.report import ImplementabilityReport, PropertyVerdict
from repro.stg.generators import handshake, vme_read_cycle


class TestTraversalStats:
    def test_roundtrip_is_exact(self):
        stats = TraversalStats(iterations=7, images_computed=21,
                               peak_nodes=120, final_nodes=40,
                               num_variables=10, num_states=64)
        assert TraversalStats.from_dict(stats.to_dict()) == stats

    def test_roundtrip_through_json(self):
        stats = TraversalStats(iterations=3, num_states=8)
        text = json.dumps(stats.to_dict())
        assert TraversalStats.from_dict(json.loads(text)) == stats

    def test_unknown_keys_ignored(self):
        data = TraversalStats(iterations=2).to_dict()
        data["future_field"] = "whatever"
        assert TraversalStats.from_dict(data).iterations == 2

    def test_live_stats_roundtrip(self):
        pipeline = VerificationPipeline(handshake())
        pipeline.run()
        stats = pipeline.traversal_stats
        assert TraversalStats.from_dict(stats.to_dict()) == stats


class TestPropertyVerdict:
    def test_roundtrip(self):
        verdict = PropertyVerdict("csc", False, ["signal d", "signal lds"])
        assert PropertyVerdict.from_dict(verdict.to_dict()) == verdict


class TestImplementabilityReport:
    def test_live_report_roundtrips_exactly(self):
        report = VerificationPipeline(
            vme_read_cycle()).run(include_liveness=True)
        rebuilt = ImplementabilityReport.from_dict(report.to_dict())
        assert rebuilt == report

    def test_roundtrip_through_json(self):
        report = VerificationPipeline(handshake()).run(include_liveness=True)
        text = json.dumps(report.to_dict())
        rebuilt = ImplementabilityReport.from_dict(json.loads(text))
        assert rebuilt == report

    def test_derived_properties_recompute(self):
        report = VerificationPipeline(
            vme_read_cycle()).run(include_liveness=True)
        rebuilt = ImplementabilityReport.from_dict(report.to_dict())
        assert rebuilt.classification == report.classification
        assert rebuilt.csc_reducible == report.csc_reducible
        assert rebuilt.io_implementable == report.io_implementable

    def test_unknown_keys_ignored(self):
        report = VerificationPipeline(handshake()).run()
        data = report.to_dict()
        data["added_in_a_future_schema"] = 42
        assert ImplementabilityReport.from_dict(data) == report

    def test_verdict_evidence_survives(self):
        report = VerificationPipeline(
            vme_read_cycle()).run(include_liveness=True)
        rebuilt = ImplementabilityReport.from_dict(report.to_dict())
        assert [str(v) for v in rebuilt.verdicts] == \
            [str(v) for v in report.verdicts]
