"""Tests for the symbolic traversal (Figure 5) and the frozen closures."""

import pytest

from repro.core.encoding import SymbolicEncoding
from repro.core.image import SymbolicImage
from repro.core.traversal import (
    frozen_backward_closure,
    frozen_forward_closure,
    symbolic_traversal,
)
from repro.sg import build_state_graph
from repro.stg.generators import (
    csc_violation_example,
    fake_conflict_d1,
    handshake,
    irreducible_csc_example,
    master_read,
    muller_pipeline,
    mutex_element,
    parallel_handshakes,
)

EXAMPLES = [
    ("handshake", handshake),
    ("mutex", mutex_element),
    ("csc_violation", csc_violation_example),
    ("irreducible", irreducible_csc_example),
    ("fake_d1", fake_conflict_d1),
    ("pipeline4", lambda: muller_pipeline(4)),
    ("master_read2", lambda: master_read(2)),
    ("parallel3", lambda: parallel_handshakes(3)),
]


@pytest.mark.parametrize("name, factory", EXAMPLES,
                         ids=[name for name, _ in EXAMPLES])
class TestReachedSetMatchesExplicit:
    def test_state_count_matches_explicit_enumeration(self, name, factory):
        stg = factory()
        explicit = build_state_graph(stg).graph
        encoding = SymbolicEncoding(stg)
        reached, stats = symbolic_traversal(encoding)
        assert stats.num_states == explicit.num_states

    def test_every_explicit_state_is_in_reached(self, name, factory):
        stg = factory()
        explicit = build_state_graph(stg).graph
        encoding = SymbolicEncoding(stg)
        reached, _ = symbolic_traversal(encoding)
        for state in explicit.states:
            minterm = encoding.state_minterm(
                state.marking, {s: state.value_of(s) for s in stg.signals})
            assert minterm <= reached, state


class TestTraversalStrategies:
    @pytest.mark.parametrize("name, factory", EXAMPLES[:5],
                             ids=[name for name, _ in EXAMPLES[:5]])
    def test_chained_and_frontier_agree(self, name, factory):
        stg = factory()
        encoding = SymbolicEncoding(stg)
        chained, stats_chained = symbolic_traversal(encoding, strategy="chained")
        frontier, stats_frontier = symbolic_traversal(encoding,
                                                      strategy="frontier")
        assert chained == frontier
        assert stats_chained.num_states == stats_frontier.num_states

    def test_chained_uses_fewer_or_equal_iterations(self):
        stg = muller_pipeline(5)
        encoding = SymbolicEncoding(stg)
        _, chained = symbolic_traversal(encoding, strategy="chained")
        _, frontier = symbolic_traversal(encoding, strategy="frontier")
        assert chained.iterations <= frontier.iterations

    def test_unknown_strategy_rejected(self):
        encoding = SymbolicEncoding(handshake())
        with pytest.raises(ValueError):
            symbolic_traversal(encoding, strategy="depth_first")

    def test_stats_are_populated(self):
        encoding = SymbolicEncoding(muller_pipeline(3))
        reached, stats = symbolic_traversal(encoding)
        assert stats.num_states == 16
        assert stats.iterations >= 1
        assert stats.images_computed > 0
        assert stats.peak_nodes >= stats.final_nodes > 1
        assert stats.num_variables == len(encoding.all_variables)
        assert stats.final_nodes == reached.size()

    def test_observer_sees_growing_sets(self):
        encoding = SymbolicEncoding(handshake())
        observed = []
        symbolic_traversal(encoding, observer=observed.append)
        assert len(observed) >= 2  # initial set plus at least one frontier

    def test_restricted_transition_set(self):
        # Firing only the input transitions of the handshake stays within
        # the two states reachable by r alone.
        stg = handshake()
        encoding = SymbolicEncoding(stg)
        image = SymbolicImage(encoding)
        reached, stats = symbolic_traversal(
            encoding, image=image, transitions=image.input_transitions())
        assert stats.num_states == 2


class TestFrozenClosures:
    def test_forward_closure_with_inputs_only(self):
        stg = mutex_element()
        encoding = SymbolicEncoding(stg)
        image = SymbolicImage(encoding)
        full, _ = symbolic_traversal(encoding, image=image)
        closure = frozen_forward_closure(
            image, encoding.initial_state(), image.input_transitions(),
            restrict_to=full)
        # From the idle state both requests can rise independently: 4 states.
        assert encoding.count_states(closure) == 4

    def test_backward_closure_inverts_forward(self):
        stg = handshake()
        encoding = SymbolicEncoding(stg)
        image = SymbolicImage(encoding)
        full, _ = symbolic_traversal(encoding, image=image)
        forward = frozen_forward_closure(
            image, encoding.initial_state(), stg.transitions, restrict_to=full)
        assert forward == full
        backward = frozen_backward_closure(
            image, encoding.initial_state(), stg.transitions, restrict_to=full)
        assert backward == full

    def test_closure_respects_restriction(self):
        stg = handshake()
        encoding = SymbolicEncoding(stg)
        image = SymbolicImage(encoding)
        only_initial = encoding.initial_state()
        closure = frozen_forward_closure(image, only_initial, stg.transitions,
                                         restrict_to=only_initial)
        assert closure == only_initial
