"""Tests for the symbolic encoding of STG full states."""

import pytest

from repro.core.encoding import ORDERING_STRATEGIES, SymbolicEncoding
from repro.petri import Marking
from repro.stg.generators import handshake, muller_pipeline, mutex_element


class TestVariables:
    def test_one_variable_per_place_and_signal(self):
        stg = mutex_element()
        encoding = SymbolicEncoding(stg)
        assert len(encoding.place_variables) == 9
        assert len(encoding.signal_variables) == 4
        assert len(encoding.all_variables) == 13

    def test_variable_names_are_prefixed(self):
        encoding = SymbolicEncoding(handshake())
        assert all(name.startswith("p:") for name in encoding.place_variables)
        assert all(name.startswith("s:") for name in encoding.signal_variables)

    def test_place_and_signal_projections(self):
        stg = handshake()
        encoding = SymbolicEncoding(stg)
        assert encoding.place("<r+,a+>").support() == ["p:<r+,a+>"]
        assert encoding.signal("r").support() == ["s:r"]

    def test_unknown_place_or_signal_rejected(self):
        encoding = SymbolicEncoding(handshake())
        with pytest.raises(Exception):
            encoding.place("ghost")
        with pytest.raises(Exception):
            encoding.signal("ghost")

    @pytest.mark.parametrize("strategy", ORDERING_STRATEGIES)
    def test_every_strategy_is_a_permutation(self, strategy):
        stg = muller_pipeline(3)
        encoding = SymbolicEncoding(stg, ordering=strategy)
        assert sorted(encoding.all_variables) == sorted(
            encoding.place_variables + encoding.signal_variables)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            SymbolicEncoding(handshake(), ordering="random_nonsense")

    def test_declaration_strategy_order(self):
        stg = handshake()
        encoding = SymbolicEncoding(stg, ordering="declaration")
        variables = encoding.manager.variables
        place_positions = [variables.index(v) for v in encoding.place_variables]
        signal_positions = [variables.index(v) for v in encoding.signal_variables]
        assert max(place_positions) < min(signal_positions)

    def test_signals_first_strategy_order(self):
        stg = handshake()
        encoding = SymbolicEncoding(stg, ordering="signals_first")
        variables = encoding.manager.variables
        place_positions = [variables.index(v) for v in encoding.place_variables]
        signal_positions = [variables.index(v) for v in encoding.signal_variables]
        assert max(signal_positions) < min(place_positions)


class TestStateConstruction:
    def test_marking_minterm_is_single_assignment(self):
        stg = handshake()
        encoding = SymbolicEncoding(stg)
        minterm = encoding.marking_minterm(stg.initial_marking())
        assert minterm.sat_count(care_vars=encoding.place_variables) == 1

    def test_initial_state_minterm(self):
        stg = handshake()
        encoding = SymbolicEncoding(stg)
        initial = encoding.initial_state()
        assert encoding.count_states(initial) == 1
        model = initial.pick_one(encoding.all_variables)
        decoded = encoding.decode_state(model)
        assert decoded["marking"] == stg.initial_marking()
        assert decoded["code"] == {"r": False, "a": False}

    def test_code_minterm_fixes_all_signals(self):
        stg = mutex_element()
        encoding = SymbolicEncoding(stg)
        code = encoding.code_minterm({s: False for s in stg.signals})
        assert code.sat_count(care_vars=encoding.signal_variables) == 1

    def test_markings_to_function_counts(self):
        stg = handshake()
        encoding = SymbolicEncoding(stg)
        m0 = stg.initial_marking()
        m1 = stg.net.fire("r+", m0)
        chi = encoding.markings_to_function([m0, m1])
        assert chi.sat_count(care_vars=encoding.place_variables) == 2

    def test_decode_roundtrip(self):
        stg = mutex_element()
        encoding = SymbolicEncoding(stg)
        marking = Marking({"p_me": 1, "<r1+,g1+>": 1, "<g2-,r2+>": 1})
        values = {"r1": True, "r2": False, "g1": False, "g2": False}
        minterm = encoding.state_minterm(marking, values)
        decoded = encoding.decode_state(minterm.pick_one(encoding.all_variables))
        assert decoded["marking"] == marking
        assert decoded["code"] == values

    def test_count_states_of_false_and_true(self):
        encoding = SymbolicEncoding(handshake())
        assert encoding.count_states(encoding.manager.false) == 0
        total = 2 ** len(encoding.all_variables)
        assert encoding.count_states(encoding.manager.true) == total
