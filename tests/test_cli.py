"""Tests for the stg-check command-line interface."""

import pytest

from repro import corpus
from repro.cli import build_argument_parser, load_specification, main
from repro.stg import write_g
from repro.stg.generators import handshake


class TestArgumentParser:
    def test_defaults(self):
        arguments = build_argument_parser().parse_args(["handshake"])
        assert arguments.specification == "handshake"
        assert not arguments.explicit
        assert arguments.ordering == "force"
        assert arguments.scale is None

    def test_scale_and_flags(self):
        arguments = build_argument_parser().parse_args(
            ["muller_pipeline", "--scale", "4", "--explicit",
             "--ordering", "declaration", "--arbitration", "p_me"])
        assert arguments.scale == 4
        assert arguments.explicit
        assert arguments.ordering == "declaration"
        assert arguments.arbitration == ["p_me"]


class TestLoadSpecification:
    def test_load_builtin_example(self):
        assert load_specification("handshake", None).name == "handshake"

    def test_load_scalable_family(self):
        stg = load_specification("muller_pipeline", 3)
        assert stg.name == "muller_pipeline_3"

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "spec.g"
        write_g(handshake(), str(path))
        assert set(load_specification(str(path), None).signals) == {"r", "a"}


class TestMain:
    def test_implementable_example_exit_code_zero(self, capsys):
        assert main(["handshake"]) == 0
        output = capsys.readouterr().out
        assert "gate-implementable" in output

    def test_explicit_engine(self, capsys):
        assert main(["handshake", "--explicit"]) == 0
        assert "explicit check" in capsys.readouterr().out

    def test_scalable_family_via_cli(self, capsys):
        assert main(["muller_pipeline", "--scale", "3"]) == 0
        assert "muller_pipeline_3" in capsys.readouterr().out

    def test_failing_example_exit_code_one(self, capsys):
        assert main(["inconsistent"]) == 1
        assert "not SI-implementable" in capsys.readouterr().out

    def test_arbitration_option(self, capsys):
        assert main(["mutex_element", "--arbitration", "p_me"]) == 0

    def test_mutex_without_arbitration_fails(self):
        assert main(["mutex_element"]) == 1

    def test_validate_only(self, capsys):
        assert main(["handshake", "--validate-only"]) == 0

    def test_file_input_with_inferred_values(self, tmp_path, capsys):
        stg = handshake()
        stg._initial_values.clear()
        path = tmp_path / "noval.g"
        write_g(stg, str(path))
        assert main([str(path), "--infer-initial-values"]) == 0

    def test_liveness_option(self, capsys):
        assert main(["handshake", "--liveness"]) == 0
        output = capsys.readouterr().out
        assert "deadlock-free" in output
        assert "reversible" in output

    def test_synthesize_option(self, capsys):
        assert main(["handshake", "--synthesize"]) == 0
        assert "a = r" in capsys.readouterr().out

    def test_synthesize_skipped_without_csc(self, capsys):
        # csc_violation is I/O-implementable (exit code 0) but not
        # gate-implementable, so no equations can be derived.
        assert main(["csc_violation", "--synthesize"]) == 0
        assert "synthesis skipped" in capsys.readouterr().out


class TestBatchCheck:
    """The corpus sweep: ``stg-check batch-check``."""

    def test_full_sweep_matches_registry(self, capsys):
        assert main(["batch-check"]) == 0
        output = capsys.readouterr().out
        for name in corpus.names():
            assert name in output
        assert "0 mismatching" in output
        assert "MISMATCH" not in output

    def test_selected_entries_only(self, capsys):
        assert main(["batch-check", "vme_read", "handshake"]) == 0
        output = capsys.readouterr().out
        assert "vme_read" in output and "handshake" in output
        assert "mutex_element" not in output
        assert "2 entries" in output

    def test_explicit_engine(self, capsys):
        assert main(["batch-check", "handshake", "choice_controller",
                     "--engine", "explicit"]) == 0
        assert "engine: explicit" in capsys.readouterr().out

    def test_list_mode(self, capsys):
        assert main(["batch-check", "--list"]) == 0
        output = capsys.readouterr().out
        for name in corpus.names():
            assert name in output

    def test_unknown_entry_is_an_argument_error(self, capsys):
        with pytest.raises(SystemExit):
            main(["batch-check", "no_such_entry"])
        assert "available" in capsys.readouterr().err

    def test_write_dir_materialises_files(self, tmp_path, capsys):
        assert main(["batch-check", "handshake",
                     "--write-dir", str(tmp_path)]) == 0
        path = tmp_path / "handshake.g"
        assert path.exists()
        assert path.read_text() == corpus.g_text("handshake")
