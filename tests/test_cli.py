"""Tests for the stg-check command-line interface."""

import json

import pytest

from repro import corpus
from repro.cli import build_argument_parser, load_specification, main
from repro.stg import write_g
from repro.stg.generators import handshake


class TestArgumentParser:
    def test_defaults(self):
        arguments = build_argument_parser().parse_args(["handshake"])
        assert arguments.specification == "handshake"
        assert not arguments.explicit
        assert arguments.ordering == "force"
        assert arguments.scale is None

    def test_scale_and_flags(self):
        arguments = build_argument_parser().parse_args(
            ["muller_pipeline", "--scale", "4", "--explicit",
             "--ordering", "declaration", "--arbitration", "p_me"])
        assert arguments.scale == 4
        assert arguments.explicit
        assert arguments.ordering == "declaration"
        assert arguments.arbitration == ["p_me"]


class TestLoadSpecification:
    def test_load_builtin_example(self):
        assert load_specification("handshake", None).name == "handshake"

    def test_load_scalable_family(self):
        stg = load_specification("muller_pipeline", 3)
        assert stg.name == "muller_pipeline_3"

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "spec.g"
        write_g(handshake(), str(path))
        assert set(load_specification(str(path), None).signals) == {"r", "a"}


class TestMain:
    def test_implementable_example_exit_code_zero(self, capsys):
        assert main(["handshake"]) == 0
        output = capsys.readouterr().out
        assert "gate-implementable" in output

    def test_explicit_engine(self, capsys):
        assert main(["handshake", "--explicit"]) == 0
        assert "explicit check" in capsys.readouterr().out

    def test_scalable_family_via_cli(self, capsys):
        assert main(["muller_pipeline", "--scale", "3"]) == 0
        assert "muller_pipeline_3" in capsys.readouterr().out

    def test_failing_example_exit_code_one(self, capsys):
        assert main(["inconsistent"]) == 1
        assert "not SI-implementable" in capsys.readouterr().out

    def test_arbitration_option(self, capsys):
        assert main(["mutex_element", "--arbitration", "p_me"]) == 0

    def test_mutex_without_arbitration_fails(self):
        assert main(["mutex_element"]) == 1

    def test_validate_only(self, capsys):
        assert main(["handshake", "--validate-only"]) == 0

    def test_file_input_with_inferred_values(self, tmp_path, capsys):
        stg = handshake()
        stg._initial_values.clear()
        path = tmp_path / "noval.g"
        write_g(stg, str(path))
        assert main([str(path), "--infer-initial-values"]) == 0

    def test_liveness_option(self, capsys):
        assert main(["handshake", "--liveness"]) == 0
        output = capsys.readouterr().out
        assert "deadlock-free" in output
        assert "reversible" in output

    def test_synthesize_option(self, capsys):
        assert main(["handshake", "--synthesize"]) == 0
        assert "a = r" in capsys.readouterr().out

    def test_synthesize_skipped_without_csc(self, capsys):
        # csc_violation is I/O-implementable (exit code 0) but not
        # gate-implementable, so no equations can be derived.
        assert main(["csc_violation", "--synthesize"]) == 0
        assert "synthesis skipped" in capsys.readouterr().out

    def test_engine_option_matches_explicit_flag(self, capsys):
        assert main(["handshake", "--engine", "explicit"]) == 0
        assert "explicit check" in capsys.readouterr().out

    def test_conflicting_engine_and_explicit_flags_exit_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["handshake", "--engine", "symbolic", "--explicit"])
        assert excinfo.value.code == 2
        assert "conflicts" in capsys.readouterr().err

    def test_unknown_engine_exits_2_with_did_you_mean(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["handshake", "--engine", "symbolc"])
        assert excinfo.value.code == 2
        assert "did you mean: symbolic" in capsys.readouterr().err

    def test_checks_subset_runs_only_selected_checks(self, capsys):
        assert main(["handshake", "--checks", "csc,persistency"]) == 0
        output = capsys.readouterr().out
        assert "complete state coding" in output
        assert "signal persistency" in output
        assert "consistent state assignment" not in output
        # basics unchecked: the class is explicitly partial, not omitted
        assert "classification: partial" in output

    def test_checks_subset_exit_code_reflects_selected_verdicts(self):
        # csc_violation fails CSC (exit 1 for a csc-only run) but passes
        # persistency (exit 0), even though the full-run exit code is 0.
        assert main(["csc_violation", "--checks", "csc"]) == 1
        assert main(["csc_violation", "--checks", "persistency"]) == 0

    def test_unknown_check_exits_2_with_did_you_mean(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["handshake", "--checks", "cscx"])
        assert excinfo.value.code == 2
        assert "did you mean: csc" in capsys.readouterr().err

    def test_unknown_arbitration_place_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["mutex_element", "--arbitration", "p_mee"])
        assert excinfo.value.code == 2
        assert "did you mean: p_me" in capsys.readouterr().err


class TestBatchCheck:
    """The corpus sweep: ``stg-check batch-check``."""

    def test_full_sweep_matches_registry(self, capsys):
        assert main(["batch-check"]) == 0
        output = capsys.readouterr().out
        for name in corpus.names():
            assert name in output
        assert "0 mismatching" in output
        assert "MISMATCH" not in output

    def test_selected_entries_only(self, capsys):
        assert main(["batch-check", "vme_read", "handshake"]) == 0
        output = capsys.readouterr().out
        assert "vme_read" in output and "handshake" in output
        assert "mutex_element" not in output
        assert "2 entries" in output

    def test_explicit_engine(self, capsys):
        assert main(["batch-check", "handshake", "choice_controller",
                     "--engine", "explicit"]) == 0
        assert "engine: explicit" in capsys.readouterr().out

    def test_list_mode(self, capsys):
        assert main(["batch-check", "--list"]) == 0
        output = capsys.readouterr().out
        for name in corpus.names():
            assert name in output

    def test_unknown_entry_is_an_argument_error(self, capsys):
        with pytest.raises(SystemExit):
            main(["batch-check", "no_such_entry"])
        assert "available" in capsys.readouterr().err

    def test_unknown_entry_exits_2_with_did_you_mean(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["batch-check", "mutx_element"])
        assert excinfo.value.code == 2
        error = capsys.readouterr().err
        assert "did you mean" in error
        assert "mutex_element" in error

    def test_list_mode_prints_expected_metadata(self, capsys):
        assert main(["batch-check", "--list"]) == 0
        output = capsys.readouterr().out
        assert "expected:" in output
        assert "classification=gate-implementable" in output
        assert "[table1]" in output and "[random]" in output

    def test_write_dir_materialises_files(self, tmp_path, capsys):
        assert main(["batch-check", "handshake",
                     "--write-dir", str(tmp_path)]) == 0
        path = tmp_path / "handshake.g"
        assert path.exists()
        assert path.read_text() == corpus.g_text("handshake")

    def test_unknown_batch_engine_exits_2_with_did_you_mean(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["batch-check", "handshake", "--engine", "explcit"])
        assert excinfo.value.code == 2
        assert "did you mean: explicit" in capsys.readouterr().err

    def test_list_json_is_machine_readable(self, capsys):
        assert main(["batch-check", "--list", "--json", "-"]) == 0
        payload = json.loads(capsys.readouterr().out)
        by_name = {entry["name"]: entry for entry in payload["entries"]}
        assert set(by_name) == set(corpus.names())
        # Expected verdicts ship as JSON values, classification as text.
        vme = by_name["vme_read"]
        assert vme["expected"]["csc"] is False
        assert vme["expected"]["classification"] == "I/O-implementable"
        assert vme["family"] is None
        # Family-derived entries carry their provenance.
        pipeline = by_name["muller_pipeline_3"]
        assert pipeline["family"] == "muller_pipeline"
        assert pipeline["scale"] == 3
        mutex = by_name["mutex_element"]
        assert mutex["arbitration_places"] == ["p_me"]
        # The scalable families a --family sweep can draw from.
        family_names = [family["name"] for family in payload["families"]]
        assert "random_ring" in family_names

    def test_list_json_to_file(self, tmp_path, capsys):
        path = tmp_path / "listing.json"
        assert main(["batch-check", "--list", "--json", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert len(payload["entries"]) == len(corpus.names())


class TestBatchCheckRunnerFlags:
    """The runner-backed flags: --jobs, --shard, --cache-dir, --json."""

    SELECTION = ["handshake", "vme_read", "mutex_element", "inconsistent"]

    @pytest.mark.smoke
    def test_parallel_sweep_matches_sequential_output(self, capsys):
        assert main(["batch-check", *self.SELECTION]) == 0
        sequential = capsys.readouterr().out
        assert main(["batch-check", *self.SELECTION, "--jobs", "3"]) == 0
        parallel = capsys.readouterr().out
        strip = (lambda text: "\n".join(
            line for line in text.splitlines()
            if not line.startswith("batch-check:")))
        assert strip(sequential) == strip(parallel)
        assert "jobs: 3" in parallel

    def test_shard_selects_a_strict_subset(self, capsys):
        assert main(["batch-check", "--shard", "0/8"]) == 0
        output = capsys.readouterr().out
        shard_size = len(corpus.names()) // 8 + \
            (1 if len(corpus.names()) % 8 else 0)
        assert f"{shard_size} entries" in output
        assert "shard: 0/8" in output

    def test_invalid_shard_spec_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["batch-check", "--shard", "eight"])
        assert excinfo.value.code == 2

    def test_cache_roundtrip_reports_cached_entries(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(["batch-check", "handshake", "vme_read",
                     "--cache-dir", cache]) == 0
        assert "0 cached" in capsys.readouterr().out
        assert main(["batch-check", "handshake", "vme_read",
                     "--cache-dir", cache]) == 0
        second = capsys.readouterr().out
        assert "2 cached" in second
        assert "[cached]" in second

    def test_no_cache_bypasses_the_store(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(["batch-check", "handshake",
                     "--cache-dir", cache]) == 0
        capsys.readouterr()
        assert main(["batch-check", "handshake", "--cache-dir", cache,
                     "--no-cache"]) == 0
        assert "0 cached" in capsys.readouterr().out

    def test_json_report_to_file(self, tmp_path, capsys):
        path = tmp_path / "report.json"
        assert main(["batch-check", "handshake", "vme_read",
                     "--json", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert payload["total"] == 2
        assert payload["mismatching"] == 0
        names = [entry["name"] for entry in payload["entries"]]
        assert names == ["handshake", "vme_read"]
        assert payload["entries"][0]["report"]["num_states"] == 4

    def test_json_report_to_stdout(self, capsys):
        assert main(["batch-check", "handshake", "--json", "-"]) == 0
        output = capsys.readouterr().out
        start = output.index("{")
        payload = json.loads(output[start:])
        assert payload["entries"][0]["status"] == "ok"

    @pytest.mark.smoke
    def test_family_scale_range(self, capsys):
        assert main(["batch-check", "handshake",
                     "--family", "random_ring:1-4", "--jobs", "2"]) == 0
        output = capsys.readouterr().out
        assert "random_ring@1" in output and "random_ring@4" in output
        assert "5 entries" in output

    def test_invalid_family_spec_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["batch-check", "--family", "random_ring"])
        assert excinfo.value.code == 2

    def test_unknown_family_name_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["batch-check", "--family", "no_such_family:1-3"])
        assert excinfo.value.code == 2
        assert "no_such_family" in capsys.readouterr().err

    def test_out_of_range_family_scale_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["batch-check", "--family", "muller_pipeline:0"])
        assert excinfo.value.code == 2
        assert "rejected scale 0" in capsys.readouterr().err

    def test_write_dir_is_shard_and_family_aware(self, tmp_path, capsys):
        assert main(["batch-check", "handshake", "vme_read",
                     "--family", "random_ring:1-2",
                     "--shard", "0/2",
                     "--write-dir", str(tmp_path)]) == 0
        # Shard 0/2 of [handshake, vme_read, @1, @2] = positions 0 and 2.
        written = sorted(path.name for path in tmp_path.iterdir())
        assert written == ["handshake.g", "random_ring@1.g"]
        assert (tmp_path / "handshake.g").read_text() == \
            corpus.g_text("handshake")


class TestBatchCheckBackends:
    """The execution-backend flag and its error paths."""

    @pytest.mark.parametrize("backend", ["process", "thread", "serial"])
    def test_every_builtin_backend_sweeps(self, backend, capsys):
        assert main(["batch-check", "handshake", "vme_read",
                     "--backend", backend, "--jobs", "2"]) == 0
        assert f"backend: {backend}" in capsys.readouterr().out

    def test_unknown_backend_exits_2_with_did_you_mean(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["batch-check", "handshake", "--backend", "thraed"])
        assert excinfo.value.code == 2
        assert "did you mean: thread" in capsys.readouterr().err

    def test_backends_print_identical_verdict_lines(self, capsys):
        outputs = {}
        for backend in ("process", "thread", "serial"):
            assert main(["batch-check", "handshake", "inconsistent",
                         "--backend", backend]) == 0
            outputs[backend] = "\n".join(
                line for line in capsys.readouterr().out.splitlines()
                if not line.startswith("batch-check:"))
        assert outputs["process"] == outputs["thread"] == outputs["serial"]

    def test_json_header_records_backend_and_shard(self, tmp_path, capsys):
        path = tmp_path / "report.json"
        assert main(["batch-check", "handshake", "--backend", "thread",
                     "--shard", "0/2", "--json", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert payload["backend"] == "thread"
        assert payload["shard"] == "0/2"
        assert payload["entries"][0]["provenance"] == {
            "backend": "thread", "shard": "0/2"}

    def test_stable_json_has_no_provenance_or_timing(self, tmp_path,
                                                     capsys):
        path = tmp_path / "stable.json"
        assert main(["batch-check", "handshake", "--backend", "thread",
                     "--stable-json", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert "backend" not in payload
        entry = payload["entries"][0]
        assert "provenance" not in entry
        assert "duration" not in entry and "cached" not in entry


class TestBatchCheckMergeAndResume:
    """Distribution flags: --merge, --resume, --cache-gc."""

    SELECTION = ["handshake", "vme_read", "mutex_element", "inconsistent"]

    def shard_stores(self, tmp_path, count=2):
        stores = []
        for index in range(count):
            store = str(tmp_path / f"shard-{index}")
            stores.append(store)
            assert main(["batch-check", *self.SELECTION,
                         "--shard", f"{index}/{count}",
                         "--cache-dir", store]) in (0, 1)
        return stores

    def test_merge_reproduces_the_unsharded_sweep(self, tmp_path, capsys):
        stores = self.shard_stores(tmp_path)
        capsys.readouterr()
        merged_path = tmp_path / "merged.json"
        assert main(["batch-check", *self.SELECTION,
                     "--merge", *stores,
                     "--cache-dir", str(tmp_path / "merged"),
                     "--stable-json", str(merged_path)]) == 0
        output = capsys.readouterr().out
        assert "backend: merge" in output
        assert "adopted" in output
        reference_path = tmp_path / "reference.json"
        assert main(["batch-check", *self.SELECTION,
                     "--stable-json", str(reference_path)]) == 0
        assert merged_path.read_bytes() == reference_path.read_bytes()

    def test_merge_preserves_per_entry_provenance(self, tmp_path, capsys):
        stores = self.shard_stores(tmp_path)
        report_path = tmp_path / "merged-report.json"
        assert main(["batch-check", *self.SELECTION,
                     "--merge", *stores,
                     "--cache-dir", str(tmp_path / "merged"),
                     "--json", str(report_path)]) == 0
        payload = json.loads(report_path.read_text())
        shards = {entry["name"]: entry["provenance"]["shard"]
                  for entry in payload["entries"]}
        # Round-robin 0/2 owns positions 0 and 2, shard 1/2 the rest.
        assert shards["handshake"] == "0/2"
        assert shards["vme_read"] == "1/2"
        assert shards["mutex_element"] == "0/2"

    def test_merge_reports_missing_entries_as_errors(self, tmp_path,
                                                     capsys):
        store = str(tmp_path / "shard-0")
        assert main(["batch-check", *self.SELECTION, "--shard", "0/2",
                     "--cache-dir", store]) == 0
        capsys.readouterr()
        # Merging only shard 0 of 2: the odd positions never ran.
        assert main(["batch-check", *self.SELECTION,
                     "--merge", store,
                     "--cache-dir", str(tmp_path / "merged")]) == 1
        output = capsys.readouterr().out
        assert "2 errors" in output
        assert "no verdict for this fingerprint" in output

    def test_merge_requires_cache_dir(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["batch-check", "handshake", "--merge", str(tmp_path)])
        assert excinfo.value.code == 2
        assert "--cache-dir" in capsys.readouterr().err

    def test_resume_requires_cache_dir(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["batch-check", "handshake", "--resume"])
        assert excinfo.value.code == 2

    def test_resume_conflicts_with_no_cache(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["batch-check", "handshake", "--resume", "--no-cache",
                  "--cache-dir", str(tmp_path)])
        assert excinfo.value.code == 2

    def test_resume_repairs_a_truncated_store_and_skips_done_work(
            self, tmp_path, capsys):
        import warnings

        from repro.runner.store import RESULTS_FILE

        cache = str(tmp_path / "cache")
        assert main(["batch-check", "handshake", "vme_read",
                     "--cache-dir", cache]) == 0
        capsys.readouterr()
        path = tmp_path / "cache" / RESULTS_FILE
        content = path.read_text()
        path.write_text(content + content.splitlines()[-1][:40])
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")  # the repair is the point
            assert main(["batch-check", "handshake", "vme_read",
                         "inconsistent", "--cache-dir", cache,
                         "--resume"]) == 0
        assert "2 cached" in capsys.readouterr().out
        # The store file is whole again: reloading warns about nothing.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            from repro.runner import RunStore
            assert len(RunStore(cache)) == 3

    def test_cache_gc_evicts_and_reports(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(["batch-check", *self.SELECTION,
                     "--cache-dir", cache]) == 0
        capsys.readouterr()
        assert main(["batch-check", "handshake", "--cache-dir", cache,
                     "--cache-gc", "entries=2"]) == 0
        assert "cache-gc: evicted 2" in capsys.readouterr().out
        from repro.runner import RunStore
        assert len(RunStore(cache)) == 2

    def test_invalid_cache_gc_spec_exits_2(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["batch-check", "handshake",
                  "--cache-dir", str(tmp_path), "--cache-gc", "bogus"])
        assert excinfo.value.code == 2

    def test_cache_gc_requires_cache_dir(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["batch-check", "handshake", "--cache-gc", "entries=1"])
        assert excinfo.value.code == 2


class TestBatchCheckGcAndMergeGuards:
    """Regression guards: pre-flight validation beats mid-sweep crashes."""

    def test_cache_gc_conflicts_with_no_cache(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["batch-check", "handshake", "--cache-dir", str(tmp_path),
                  "--no-cache", "--cache-gc", "entries=1"])
        assert excinfo.value.code == 2

    def test_negative_cache_gc_bound_exits_2_before_the_sweep(
            self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["batch-check", "handshake",
                  "--cache-dir", str(tmp_path), "--cache-gc", "entries=-1"])
        assert excinfo.value.code == 2
        # The sweep never ran: the verdict table is absent.
        assert "handshake " not in capsys.readouterr().out

    def test_merge_of_a_nonexistent_store_exits_2(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["batch-check", "handshake",
                  "--merge", str(tmp_path / "typo"),
                  "--cache-dir", str(tmp_path / "merged")])
        assert excinfo.value.code == 2
        assert "no such run-store directory" in capsys.readouterr().err
        assert not (tmp_path / "typo").exists()


class TestTraceFlag:
    """``--trace DIR``: per-entry JSONL traces from both CLI modes."""

    def test_single_mode_writes_a_trace_file(self, tmp_path, capsys):
        assert main(["handshake", "--trace", str(tmp_path)]) == 0
        import os

        files = os.listdir(tmp_path)
        assert files == ["handshake.jsonl"]
        from repro.obs.report import stage_breakdown
        from repro.obs.sinks import read_trace_records

        records, skipped = read_trace_records(str(tmp_path / files[0]))
        assert skipped == 0
        stages = stage_breakdown(records)
        assert "traversal" in stages

    def test_batch_mode_writes_one_file_per_entry(self, tmp_path, capsys):
        assert main(["batch-check", "handshake", "vme_read",
                     "--trace", str(tmp_path)]) == 0
        import os

        files = sorted(os.listdir(tmp_path))
        assert len(files) == 2
        assert files[0].startswith("handshake-")
        assert files[1].startswith("vme_read-")

    def test_trace_does_not_change_verdicts_or_exit_code(
            self, tmp_path, capsys):
        assert main(["inconsistent", "--trace", str(tmp_path)]) == 1
        assert "not SI-implementable" in capsys.readouterr().out

    def test_untraced_run_writes_nothing(self, tmp_path, capsys):
        assert main(["handshake"]) == 0
        import os

        assert os.listdir(tmp_path) == []
