"""Tests for the DOT exports and the VME bus controller example."""


from repro.report import ImplementabilityClass
from repro.sg import ExplicitChecker, build_state_graph
from repro.core import ImplementabilityChecker
from repro.stg.dot import state_graph_to_dot, stg_to_dot, write_dot
from repro.stg.generators import (
    handshake,
    mutex_element,
    vme_read_cycle,
    vme_read_cycle_resolved,
)


class TestVMEExample:
    def test_vme_sizes(self):
        stg = vme_read_cycle()
        assert sorted(stg.inputs) == ["dsr", "ldtack"]
        assert sorted(stg.outputs) == ["d", "dtack", "lds"]
        assert stg.net.num_places == 11
        assert stg.net.num_transitions == 10

    def test_vme_state_count(self):
        assert build_state_graph(vme_read_cycle()).graph.num_states == 14

    def test_vme_is_io_implementable_only(self):
        report = ImplementabilityChecker(vme_read_cycle()).check()
        assert report.consistent and report.output_persistent
        assert report.csc is False
        assert report.csc_reducible is True
        assert report.classification is ImplementabilityClass.IO

    def test_vme_famous_conflict_code(self):
        # The CSC conflict is at code dsr=1 ldtack=1 lds=1 d=0 dtack=0.
        from repro.sg.csc import check_csc

        stg = vme_read_cycle()
        graph = build_state_graph(stg).graph
        result = check_csc(graph, stg)
        codes = {conflict.code for conflict in result.conflicts}
        signals = stg.signals
        index = {s: i for i, s in enumerate(signals)}
        expected = ["0"] * len(signals)
        for name in ("dsr", "ldtack", "lds"):
            expected[index[name]] = "1"
        assert "".join(expected) in codes

    def test_vme_resolved_is_gate_implementable(self):
        report = ImplementabilityChecker(vme_read_cycle_resolved()).check()
        assert report.csc is True
        assert report.classification is ImplementabilityClass.GATE

    def test_symbolic_and_explicit_agree_on_vme(self):
        for factory in (vme_read_cycle, vme_read_cycle_resolved):
            stg = factory()
            symbolic = ImplementabilityChecker(stg).check()
            explicit = ExplicitChecker(stg).check()
            assert symbolic.classification == explicit.classification
            assert symbolic.num_states == explicit.num_states


class TestStgDot:
    def test_contains_transitions_and_token(self):
        text = stg_to_dot(handshake())
        assert text.startswith("digraph")
        assert 'label="r+"' in text
        assert "&bull;" in text  # the initial token

    def test_input_output_styles(self):
        text = stg_to_dot(handshake())
        assert "style=dashed" in text   # input transition
        assert "style=solid" in text    # output transition

    def test_explicit_places_rendered_as_circles(self):
        text = stg_to_dot(mutex_element())
        assert "shape=circle" in text
        assert 'xlabel="p_me"' in text

    def test_no_collapse_option(self):
        collapsed = stg_to_dot(handshake(), collapse_places=True)
        expanded = stg_to_dot(handshake(), collapse_places=False)
        assert expanded.count("shape=circle") > collapsed.count("shape=circle")

    def test_write_dot(self, tmp_path):
        path = tmp_path / "stg.dot"
        write_dot(stg_to_dot(handshake()), str(path))
        assert path.read_text().startswith("digraph")


class TestStateGraphDot:
    def test_codes_and_initial_state(self):
        stg = handshake()
        graph = build_state_graph(stg).graph
        text = state_graph_to_dot(graph, stg)
        assert 'label="00"' in text
        assert "doublecircle" in text   # the initial state

    def test_every_edge_rendered(self):
        stg = handshake()
        graph = build_state_graph(stg).graph
        text = state_graph_to_dot(graph, stg)
        assert text.count("->") == graph.num_edges
