"""Tests for STG transformations (signal insertion, hiding, renaming...)."""

import pytest

from repro.sg import ExplicitChecker, build_state_graph
from repro.sg.traces import bounded_trace_equivalent
from repro.stg import STGError, SignalKind
from repro.stg.generators import (
    csc_violation_example,
    handshake,
    mutex_element,
    vme_read_cycle,
    vme_read_cycle_resolved,
)
from repro.stg.transform import (
    expose_signals,
    hide_signals,
    insert_signal,
    mirror_signal,
    relabel_signal,
)


class TestInsertSignal:
    def test_inserted_signal_becomes_internal(self):
        stg = insert_signal(handshake(), "x", rise_after="r+", fall_after="r-")
        assert stg.internals == ["x"]
        assert "x+" in stg.transitions and "x-" in stg.transitions

    def test_original_is_not_modified(self):
        original = handshake()
        insert_signal(original, "x", rise_after="r+", fall_after="r-")
        assert not original.has_signal("x")

    def test_insertion_preserves_observable_behaviour(self):
        original = handshake()
        extended = insert_signal(original, "x", rise_after="r+",
                                 fall_after="r-")
        g1 = build_state_graph(original).graph
        g2 = build_state_graph(extended).graph
        assert bounded_trace_equivalent(g1, original, g2, extended,
                                        ["r", "a"], depth=8)

    def test_insertion_sequences_new_signal(self):
        extended = insert_signal(handshake(), "x", rise_after="r+",
                                 fall_after="a+")
        report = ExplicitChecker(extended).check()
        assert report.consistent
        assert report.output_persistent

    def test_vme_csc_resolution(self):
        # The resolution shipped as a generator: CSC violated before the
        # insertion, satisfied afterwards, interface unchanged.
        before = ExplicitChecker(vme_read_cycle()).check()
        after = ExplicitChecker(vme_read_cycle_resolved()).check()
        assert before.csc is False and before.csc_reducible is True
        assert after.csc is True
        assert set(vme_read_cycle_resolved().inputs) == set(vme_read_cycle().inputs)
        assert set(vme_read_cycle_resolved().outputs) == set(vme_read_cycle().outputs)

    def test_csc_violation_example_resolution_by_insertion(self):
        stg = csc_violation_example()
        resolved = insert_signal(stg, "x", rise_after="b+", fall_after="c+")
        report = ExplicitChecker(resolved).check()
        assert report.csc is True

    def test_duplicate_signal_rejected(self):
        with pytest.raises(STGError):
            insert_signal(handshake(), "a", rise_after="r+", fall_after="r-")

    def test_same_anchor_rejected(self):
        with pytest.raises(STGError):
            insert_signal(handshake(), "x", rise_after="r+", fall_after="r+")

    def test_unknown_anchor_rejected(self):
        with pytest.raises(STGError):
            insert_signal(handshake(), "x", rise_after="r+", fall_after="zz-")

    def test_insert_as_output(self):
        stg = insert_signal(handshake(), "probe", rise_after="r+",
                            fall_after="r-", kind=SignalKind.OUTPUT)
        assert "probe" in stg.outputs


class TestInsertSignalProperties:
    """Property-based check: insertion never changes observable behaviour."""

    from hypothesis import given, settings, strategies as st

    @settings(max_examples=20, deadline=None)
    @given(anchors=st.tuples(st.sampled_from(["r+", "a+", "r-", "a-"]),
                             st.sampled_from(["r+", "a+", "r-", "a-"])),
           kind=st.sampled_from([SignalKind.INTERNAL, SignalKind.OUTPUT]))
    def test_random_insertions_preserve_projection(self, anchors, kind):
        from hypothesis import assume

        rise_after, fall_after = anchors
        assume(rise_after != fall_after)
        original = handshake()
        extended = insert_signal(original, "x", rise_after=rise_after,
                                 fall_after=fall_after, kind=kind)
        g1 = build_state_graph(original).graph
        g2 = build_state_graph(extended).graph
        assert bounded_trace_equivalent(g1, original, g2, extended,
                                        ["r", "a"], depth=8)
        # One of the two initial values of the inserted signal must give a
        # consistent extension (x+ and x- each fire exactly once per cycle,
        # so they alternate; which phase comes first decides the value).
        if not ExplicitChecker(extended).check().consistent:
            flipped = insert_signal(original, "x", rise_after=rise_after,
                                    fall_after=fall_after, kind=kind,
                                    initial_value=True)
            assert ExplicitChecker(flipped).check().consistent


class TestHideExpose:
    def test_hide_outputs(self):
        stg = hide_signals(mutex_element(), ["g1"])
        assert "g1" in stg.internals
        assert "g2" in stg.outputs

    def test_hide_input_rejected(self):
        with pytest.raises(STGError):
            hide_signals(mutex_element(), ["r1"])

    def test_hide_unknown_rejected(self):
        with pytest.raises(STGError):
            hide_signals(mutex_element(), ["ghost"])

    def test_hiding_preserves_state_space(self):
        original = mutex_element()
        hidden = hide_signals(original, ["g1", "g2"])
        assert build_state_graph(hidden).graph.num_states == \
            build_state_graph(original).graph.num_states

    def test_expose_round_trip(self):
        original = mutex_element()
        hidden = hide_signals(original, ["g1"])
        restored = expose_signals(hidden, ["g1"])
        assert set(restored.outputs) == set(original.outputs)

    def test_expose_input_rejected(self):
        with pytest.raises(STGError):
            expose_signals(mutex_element(), ["r1"])


class TestRelabelAndMirror:
    def test_relabel_signal(self):
        stg = relabel_signal(handshake(), "a", "ack")
        assert "ack" in stg.outputs and not stg.has_signal("a")
        assert "ack+" in stg.transitions
        assert stg.initial_value("ack") is False

    def test_relabel_to_existing_name_rejected(self):
        with pytest.raises(STGError):
            relabel_signal(handshake(), "a", "r")

    def test_relabel_preserves_behaviour(self):
        original = handshake()
        renamed = relabel_signal(original, "a", "ack")
        assert build_state_graph(renamed).graph.num_states == 4
        report = ExplicitChecker(renamed).check()
        assert report.gate_implementable

    def test_mirror_signal_flips_polarity_and_initial_value(self):
        original = handshake()
        mirrored = mirror_signal(original, "a")
        assert mirrored.initial_value("a") is True
        report = ExplicitChecker(mirrored).check()
        assert report.consistent
        assert report.gate_implementable

    def test_mirror_preserves_state_count(self):
        original = mutex_element()
        mirrored = mirror_signal(original, "g1")
        assert build_state_graph(mirrored).graph.num_states == \
            build_state_graph(original).graph.num_states

    def test_mirror_unknown_signal_rejected(self):
        with pytest.raises(STGError):
            mirror_signal(handshake(), "ghost")
