"""Tests for the .g format parser and writer (including round-trips)."""

import pytest

from repro.petri import build_reachability_graph
from repro.stg import STGError, SignalKind, parse_g, read_g_file, to_g_string, write_g
from repro.stg.generators import (
    csc_violation_example,
    handshake,
    master_read,
    muller_pipeline,
    mutex_element,
)

HANDSHAKE_G = """
# A 4-phase handshake.
.model handshake
.inputs r
.outputs a
.graph
r+ a+
a+ r-
r- a-
a- r+
.marking { <a-,r+> }
.initial_values a=0 r=0
.end
"""

EXPLICIT_PLACES_G = """
.model choice
.inputs a b
.outputs o
.graph
p0 a+ b+
a+ p1
b+ p1
p1 o+
o+ p0
.marking { p0 }
.initial_values a=0 b=0 o=0
.end
"""


class TestParser:
    def test_parse_handshake(self):
        stg = parse_g(HANDSHAKE_G)
        assert stg.name == "handshake"
        assert stg.inputs == ["r"]
        assert stg.outputs == ["a"]
        assert set(stg.transitions) == {"r+", "a+", "r-", "a-"}
        assert stg.initial_marking()["<a-,r+>"] == 1
        assert stg.initial_values == {"a": False, "r": False}

    def test_parsed_handshake_behaves_like_generator(self):
        parsed = parse_g(HANDSHAKE_G)
        generated = handshake()
        parsed_graph = build_reachability_graph(parsed.net)
        generated_graph = build_reachability_graph(generated.net)
        assert parsed_graph.num_markings == generated_graph.num_markings == 4

    def test_parse_explicit_places_and_choice(self):
        stg = parse_g(EXPLICIT_PLACES_G)
        assert stg.net.has_place("p0")
        assert stg.net.postset_of_place("p0") == {"a+", "b+"}
        assert stg.net.preset_of_place("p1") == {"a+", "b+"}
        assert stg.initial_marking()["p0"] == 1

    def test_comments_and_blank_lines_ignored(self):
        text = "# top comment\n\n.model m\n.outputs x\n.graph\nx+ x-\nx- x+\n" \
               ".marking { <x-,x+> }\n.end\n"
        stg = parse_g(text)
        assert set(stg.transitions) == {"x+", "x-"}

    def test_internal_signals(self):
        text = (".model m\n.inputs i\n.outputs o\n.internal x\n.graph\n"
                "i+ x+\nx+ o+\no+ i-\ni- x-\nx- o-\no- i+\n"
                ".marking { <o-,i+> }\n.end\n")
        stg = parse_g(text)
        assert stg.internals == ["x"]
        assert stg.kind_of("x") is SignalKind.INTERNAL

    def test_marking_with_weights(self):
        text = (".model m\n.outputs x\n.graph\np0 x+\nx+ p0\n"
                ".marking { p0=2 }\n.end\n")
        stg = parse_g(text)
        assert stg.initial_marking()["p0"] == 2

    def test_dummy_rejected(self):
        with pytest.raises(STGError):
            parse_g(".model m\n.dummy d\n.graph\n.end\n")

    def test_unknown_directive_rejected(self):
        with pytest.raises(STGError):
            parse_g(".model m\n.bogus x\n.end\n")

    def test_graph_line_outside_graph_rejected(self):
        with pytest.raises(STGError):
            parse_g(".model m\n.outputs a\na+ a-\n.graph\n.end\n")

    def test_marked_unknown_place_rejected(self):
        with pytest.raises(STGError):
            parse_g(".model m\n.outputs a\n.graph\na+ a-\n"
                    ".marking { ghost }\n.end\n")

    def test_undeclared_signal_in_graph_rejected(self):
        with pytest.raises(STGError):
            parse_g(".model m\n.outputs a\n.graph\na+ b+\n.end\n")

    def test_arc_between_places_rejected(self):
        with pytest.raises(STGError):
            parse_g(".model m\n.outputs a\n.graph\np0 p1\np1 a+\n.end\n")

    def test_transition_with_index(self):
        text = (".model m\n.inputs a\n.outputs b\n.graph\n"
                "a+ b+\nb+ a-\na- b+/2\nb+/2 b-\nb- a+\n"
                ".marking { <b-,a+> }\n.end\n")
        stg = parse_g(text)
        assert "b+/2" in stg.transitions


class TestWriter:
    def test_output_contains_sections(self):
        text = to_g_string(handshake())
        assert ".model handshake" in text
        assert ".inputs r" in text
        assert ".outputs a" in text
        assert ".graph" in text
        assert ".marking" in text
        assert ".initial_values a=0 r=0" in text
        assert text.rstrip().endswith(".end")

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "handshake.g"
        write_g(handshake(), str(path))
        stg = read_g_file(str(path))
        assert set(stg.transitions) == set(handshake().transitions)


@pytest.mark.parametrize("factory", [
    handshake,
    mutex_element,
    csc_violation_example,
    lambda: muller_pipeline(3),
    lambda: master_read(2),
], ids=["handshake", "mutex", "csc_violation", "pipeline3", "master_read2"])
class TestRoundTrip:
    def test_roundtrip_preserves_interface(self, factory):
        original = factory()
        recovered = parse_g(to_g_string(original))
        assert recovered.inputs == original.inputs
        assert recovered.outputs == original.outputs
        assert recovered.internals == original.internals
        assert recovered.initial_values == original.initial_values

    def test_roundtrip_preserves_transitions(self, factory):
        original = factory()
        recovered = parse_g(to_g_string(original))
        assert set(recovered.transitions) == set(original.transitions)

    def test_roundtrip_preserves_state_space(self, factory):
        original = factory()
        recovered = parse_g(to_g_string(original))
        original_graph = build_reachability_graph(original.net)
        recovered_graph = build_reachability_graph(recovered.net)
        assert original_graph.num_markings == recovered_graph.num_markings
        assert original_graph.num_edges == recovered_graph.num_edges
