"""Tests for the benchmark generators and structural validation."""

import pytest

from repro.petri import build_reachability_graph
from repro.petri.analysis import check_boundedness
from repro.petri.structure import is_marked_graph
from repro.stg import STG, SignalKind
from repro.stg.generators import (
    FIXED_EXAMPLES,
    SCALABLE_FAMILIES,
    asymmetric_fake_conflict_example,
    build_example,
    csc_resolved_example,
    csc_violation_example,
    fake_conflict_d1,
    fake_conflict_d2,
    handshake,
    inconsistent_example,
    irreducible_csc_example,
    master_read,
    muller_pipeline,
    mutex_arbitration_places,
    mutex_element,
    output_disabled_by_input,
    parallel_handshakes,
    pipeline_with_environment,
)
from repro.stg.validate import (
    conflict_signal_pairs,
    direct_conflict_pairs,
    input_choice_only,
    is_marked_graph_stg,
    validate_structure,
)


class TestPaperFigures:
    def test_mutex_matches_figure_1_sizes(self):
        stg = mutex_element()
        assert stg.net.num_places == 9
        assert stg.net.num_transitions == 8
        assert sorted(stg.inputs) == ["r1", "r2"]
        assert sorted(stg.outputs) == ["g1", "g2"]

    def test_mutex_grants_exclusive(self):
        stg = mutex_element()
        graph = build_reachability_graph(stg.net)
        for marking in graph.markings:
            enabled_after_grant = {t for t in ("g1+", "g2+")}
            # Never both grants high: derive signal values by simulation is
            # done in the sg tests; here check the mutex place invariant.
            me_token = marking["p_me"]
            granted = sum(
                1 for index in (1, 2)
                if marking[f"<g{index}+,r{index}->"] == 1
                or marking[f"<r{index}-,g{index}->"] == 1)
            assert me_token + granted == 1
            assert enabled_after_grant  # structural sanity of the test itself

    def test_mutex_scales(self):
        stg = mutex_element(4)
        assert len(stg.signals) == 8
        assert len(mutex_arbitration_places(stg)) == 1

    def test_mutex_rejects_zero_users(self):
        with pytest.raises(ValueError):
            mutex_element(0)

    def test_fake_conflict_d1_d2_same_state_count(self):
        d1_graph = build_reachability_graph(fake_conflict_d1().net)
        d2_graph = build_reachability_graph(fake_conflict_d2().net)
        # D1 has the same signal behaviour as D2 (Figure 3): both run
        # a+ and b+ in either order and then c+, so the marking counts match.
        assert d1_graph.num_markings == d2_graph.num_markings == 5

    def test_fake_conflict_d1_has_direct_conflicts(self):
        pairs = direct_conflict_pairs(fake_conflict_d1())
        assert ("a+", "b+/2") in pairs

    def test_fake_conflict_d2_has_no_conflicts(self):
        assert direct_conflict_pairs(fake_conflict_d2()) == []


class TestScalableFamilies:
    @pytest.mark.parametrize("stages", [1, 2, 3, 4])
    def test_muller_pipeline_is_safe_marked_graph(self, stages):
        stg = muller_pipeline(stages)
        assert is_marked_graph_stg(stg)
        result = check_boundedness(stg.net)
        assert result.bounded and result.safe

    def test_muller_pipeline_state_growth(self):
        counts = [build_reachability_graph(muller_pipeline(n).net).num_markings
                  for n in (1, 2, 3, 4, 5)]
        assert counts[0] == 4
        # Strictly growing and super-linear (exponential family).
        assert all(later > earlier for earlier, later in zip(counts, counts[1:]))
        assert counts[4] / counts[1] > 4

    def test_muller_pipeline_interface(self):
        stg = muller_pipeline(3)
        assert stg.inputs == ["c0"]
        assert stg.outputs == ["c1", "c2", "c3"]
        assert stg.has_complete_initial_values()

    @pytest.mark.parametrize("channels", [1, 2, 3])
    def test_master_read_is_safe_marked_graph(self, channels):
        stg = master_read(channels)
        assert is_marked_graph(stg.net)
        result = check_boundedness(stg.net)
        assert result.bounded and result.safe

    def test_master_read_state_growth(self):
        counts = [build_reachability_graph(master_read(n).net).num_markings
                  for n in (1, 2, 3)]
        assert all(later > 2 * earlier for earlier, later in zip(counts, counts[1:]))

    def test_parallel_handshakes_state_count_exact(self):
        for count in (1, 2, 3):
            graph = build_reachability_graph(parallel_handshakes(count).net)
            assert graph.num_markings == 4 ** count

    def test_pipeline_with_environment_adds_ack(self):
        stg = pipeline_with_environment(2)
        assert "ack" in stg.inputs

    @pytest.mark.parametrize("factory", [muller_pipeline, master_read,
                                         parallel_handshakes])
    def test_scale_must_be_positive(self, factory):
        with pytest.raises(ValueError):
            factory(0)


class TestViolationExamples:
    def test_inconsistent_example_repeats_rising_edge(self):
        stg = inconsistent_example()
        graph = build_reachability_graph(stg.net)
        assert graph.num_markings == 5
        # The sequence b+ a+ b+/2 is feasible.
        marking = stg.net.fire_sequence(["b+", "a+", "b+/2"])
        assert marking is not None

    def test_output_disabled_by_input_structure(self):
        stg = output_disabled_by_input()
        pairs = direct_conflict_pairs(stg)
        assert ("a+", "b+") in pairs
        assert not input_choice_only(stg)

    def test_csc_violation_example_is_deterministic_cycle(self):
        graph = build_reachability_graph(csc_violation_example().net)
        assert graph.num_markings == 8
        assert graph.deadlocks() == []

    def test_csc_resolved_example_has_internal_signal(self):
        stg = csc_resolved_example()
        assert stg.internals == ["x"]
        assert build_reachability_graph(stg.net).num_markings == 10

    def test_irreducible_example_is_input_choice(self):
        stg = irreducible_csc_example()
        assert input_choice_only(stg)
        assert conflict_signal_pairs(stg) == [("a", "b"), ("b", "a")]

    def test_asymmetric_fake_conflict_mixes_kinds(self):
        stg = asymmetric_fake_conflict_example()
        assert not input_choice_only(stg)


class TestValidation:
    @pytest.mark.parametrize("name", sorted(FIXED_EXAMPLES))
    def test_all_fixed_examples_pass_structural_validation(self, name):
        report = validate_structure(FIXED_EXAMPLES[name]())
        assert report.valid, str(report)

    @pytest.mark.parametrize("name", sorted(SCALABLE_FAMILIES))
    def test_all_families_pass_structural_validation(self, name):
        report = validate_structure(SCALABLE_FAMILIES[name](3))
        assert report.valid, str(report)

    def test_empty_stg_is_invalid(self):
        report = validate_structure(STG("empty"))
        assert not report.valid

    def test_unlabelled_transition_is_error(self):
        stg = handshake()
        stg.net.add_transition("rogue")
        stg.net.add_place("p_rogue", tokens=1)
        stg.net.add_arc("p_rogue", "rogue")
        report = validate_structure(stg)
        assert any("no signal label" in issue.message for issue in report.errors)

    def test_source_transition_is_error(self):
        stg = STG()
        stg.add_signal("a", SignalKind.OUTPUT)
        stg.add_transition("a+")
        report = validate_structure(stg)
        assert any("no input places" in issue.message for issue in report.errors)

    def test_empty_marking_is_error(self):
        stg = STG()
        stg.add_signal("a", SignalKind.OUTPUT)
        stg.connect("a+", "a-")
        stg.connect("a-", "a+")
        report = validate_structure(stg)
        assert any("initial marking is empty" in issue.message
                   for issue in report.errors)

    def test_signal_without_transitions_is_warning(self):
        stg = handshake()
        stg.add_signal("unused", SignalKind.INTERNAL, initial_value=False)
        report = validate_structure(stg)
        assert report.valid
        assert any("has no transitions" in issue.message
                   for issue in report.warnings)

    def test_one_sided_signal_is_warning(self):
        stg = fake_conflict_d1()
        report = validate_structure(stg)
        assert report.valid
        assert any("only" in issue.message for issue in report.warnings)

    def test_report_string_rendering(self):
        report = validate_structure(STG("empty"))
        assert "[error]" in str(report)
        assert str(validate_structure(handshake())) == "structure OK"


class TestBuildExample:
    def test_fixed_example(self):
        assert build_example("handshake").name == "handshake"

    def test_scalable_family(self):
        assert build_example("muller_pipeline", 4).name == "muller_pipeline_4"

    def test_family_without_scale_rejected(self):
        with pytest.raises(ValueError):
            build_example("muller_pipeline")

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            build_example("no_such_example")
