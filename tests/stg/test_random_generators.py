"""Tests of the seeded random benchmark families.

The contract: identical parameters always produce byte-identical ``.g``
text, and the structural invariants the corpus registry pins (consistency,
persistency, deadlock freedom, the analytic state count, interface
minimums) hold for every seed.
"""

import pytest

from repro.core.pipeline import VerificationPipeline
from repro.stg import generators
from repro.stg.writer import to_g_string

RING_CASES = [(3, 1), (4, 2), (6, 7), (8, 11)]
PARALLEL_CASES = [(2, 1), (3, 2), (4, 5)]


class TestDeterminism:
    @pytest.mark.parametrize("signals,seed", RING_CASES)
    def test_ring_text_is_reproducible(self, signals, seed):
        first = to_g_string(generators.random_ring(signals, seed))
        second = to_g_string(generators.random_ring(signals, seed))
        assert first == second

    @pytest.mark.parametrize("rings,seed", PARALLEL_CASES)
    def test_parallel_text_is_reproducible(self, rings, seed):
        first = to_g_string(generators.random_parallel(rings, seed))
        second = to_g_string(generators.random_parallel(rings, seed))
        assert first == second

    def test_different_seeds_differ(self):
        texts = {to_g_string(generators.random_ring(5, seed))
                 for seed in range(1, 9)}
        assert len(texts) == 8

    def test_family_adapters_cover_distinct_instances(self):
        names = {generators.random_ring_family(scale).name
                 for scale in range(1, 25)}
        assert len(names) == 24


class TestStructuralInvariants:
    @pytest.mark.parametrize("signals,seed", RING_CASES)
    def test_ring_pinned_verdicts(self, signals, seed):
        stg = generators.random_ring(signals, seed)
        report = VerificationPipeline(stg).run(include_liveness=True)
        assert report.consistent
        assert report.output_persistent
        assert report.deadlock_free
        assert report.safe
        assert report.num_states == 2 * signals

    @pytest.mark.parametrize("rings,seed", PARALLEL_CASES)
    def test_parallel_pinned_verdicts(self, rings, seed):
        stg = generators.random_parallel(rings, seed)
        report = VerificationPipeline(stg).run(include_liveness=True)
        assert report.consistent
        assert report.output_persistent
        assert report.deadlock_free
        assert report.num_states == \
            generators.random_parallel_state_count(rings, seed)

    @pytest.mark.parametrize("signals,seed", RING_CASES)
    def test_ring_interface_minimums(self, signals, seed):
        stg = generators.random_ring(signals, seed)
        assert len(stg.inputs) >= 1
        assert len(stg.outputs) >= 1
        assert len(stg.inputs) + len(stg.outputs) == signals

    def test_state_count_helper_matches_sizes(self):
        sizes = generators.random_parallel_ring_sizes(3, 4)
        expected = 1
        for size in sizes:
            expected *= 2 * size
        assert generators.random_parallel_state_count(3, 4) == expected


class TestValidation:
    def test_ring_needs_two_signals(self):
        with pytest.raises(ValueError):
            generators.random_ring(1, 1)

    def test_parallel_needs_one_ring(self):
        with pytest.raises(ValueError):
            generators.random_parallel(0, 1)

    def test_families_registered(self):
        assert "random_ring" in generators.SCALABLE_FAMILIES
        assert "random_parallel" in generators.SCALABLE_FAMILIES
        stg = generators.build_example("random_ring", 5)
        assert stg.name.startswith("random_ring_")
