"""Unit tests for signal kinds and signal-transition labels."""

import pytest

from repro.stg import STGError, SignalKind, SignalTransition


class TestSignalKind:
    def test_input_is_input(self):
        assert SignalKind.INPUT.is_input
        assert not SignalKind.INPUT.is_noninput

    def test_output_and_internal_are_noninput(self):
        assert SignalKind.OUTPUT.is_noninput
        assert SignalKind.INTERNAL.is_noninput
        assert not SignalKind.OUTPUT.is_input


class TestLabelParsing:
    def test_parse_rising(self):
        label = SignalTransition.parse("req+")
        assert label.signal == "req"
        assert label.is_rising and not label.is_falling
        assert label.index == 1

    def test_parse_falling_with_index(self):
        label = SignalTransition.parse("ack-/3")
        assert label.signal == "ack"
        assert label.is_falling
        assert label.index == 3

    def test_parse_strips_whitespace(self):
        assert SignalTransition.parse("  a+ ").signal == "a"

    def test_parse_dotted_and_bracketed_names(self):
        assert SignalTransition.parse("bus.req[3]+").signal == "bus.req[3]"

    def test_invalid_labels_rejected(self):
        for text in ("a", "a*", "+a", "a+/0", "a+/x", "", "a +"):
            with pytest.raises(STGError):
                SignalTransition.parse(text)

    def test_roundtrip_str(self):
        for text in ("a+", "b-", "a+/2", "sig_3-/7"):
            assert str(SignalTransition.parse(text)) == text


class TestLabelSemantics:
    def test_target_value(self):
        assert SignalTransition.parse("a+").target_value is True
        assert SignalTransition.parse("a-").target_value is False

    def test_generic_name_drops_index(self):
        assert SignalTransition.parse("a+/5").generic == "a+"

    def test_complement(self):
        label = SignalTransition.parse("a+/2")
        assert label.complement() == SignalTransition("a", "-", 2)

    def test_equality_and_hash(self):
        assert SignalTransition.parse("x+") == SignalTransition("x", "+", 1)
        assert hash(SignalTransition.parse("x+")) == hash(SignalTransition("x", "+"))

    def test_invalid_polarity_rejected(self):
        with pytest.raises(STGError):
            SignalTransition("a", "*")

    def test_invalid_index_rejected(self):
        with pytest.raises(STGError):
            SignalTransition("a", "+", 0)
