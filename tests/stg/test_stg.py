"""Unit tests for the STG class."""

import pytest

from repro.stg import STG, STGError, SignalKind
from repro.stg.generators import handshake, mutex_element


class TestSignals:
    def test_declaration_and_kinds(self):
        stg = STG()
        stg.add_signal("r", SignalKind.INPUT)
        stg.add_signal("a", SignalKind.OUTPUT)
        stg.add_signal("x", SignalKind.INTERNAL)
        assert stg.inputs == ["r"]
        assert stg.outputs == ["a"]
        assert stg.internals == ["x"]
        assert stg.noninput_signals == ["a", "x"]
        assert stg.is_input("r") and not stg.is_input("a")

    def test_duplicate_signal_rejected(self):
        stg = STG()
        stg.add_signal("a", SignalKind.INPUT)
        with pytest.raises(STGError):
            stg.add_signal("a", SignalKind.OUTPUT)

    def test_unknown_signal_rejected(self):
        stg = STG()
        with pytest.raises(STGError):
            stg.kind_of("ghost")

    def test_add_signals_bulk(self):
        stg = STG()
        stg.add_signals(["a", "b", "c"], SignalKind.OUTPUT)
        assert stg.outputs == ["a", "b", "c"]


class TestInitialValues:
    def test_values_from_declaration(self):
        stg = STG()
        stg.add_signal("a", SignalKind.INPUT, initial_value=True)
        assert stg.initial_value("a") is True

    def test_set_later(self):
        stg = STG()
        stg.add_signal("a", SignalKind.INPUT)
        assert stg.initial_value("a") is None
        stg.set_initial_value("a", False)
        assert stg.initial_value("a") is False

    def test_initial_state_vector_requires_all_values(self):
        stg = STG()
        stg.add_signal("a", SignalKind.INPUT, initial_value=False)
        stg.add_signal("b", SignalKind.OUTPUT)
        assert not stg.has_complete_initial_values()
        with pytest.raises(STGError):
            stg.initial_state_vector()
        stg.set_initial_value("b", True)
        assert stg.initial_state_vector() == {"a": False, "b": True}

    def test_set_initial_values_bulk(self):
        stg = STG()
        stg.add_signals(["a", "b"], SignalKind.INPUT)
        stg.set_initial_values({"a": True, "b": False})
        assert stg.initial_values == {"a": True, "b": False}


class TestTransitionsAndPlaces:
    def test_add_transition_requires_declared_signal(self):
        stg = STG()
        with pytest.raises(STGError):
            stg.add_transition("a+")

    def test_add_transition_and_label(self):
        stg = STG()
        stg.add_signal("a", SignalKind.OUTPUT)
        name = stg.add_transition("a+/2")
        assert name == "a+/2"
        assert stg.label_of(name).index == 2
        assert stg.signal_of(name) == "a"

    def test_duplicate_transition_rejected(self):
        stg = STG()
        stg.add_signal("a", SignalKind.OUTPUT)
        stg.add_transition("a+")
        with pytest.raises(STGError):
            stg.add_transition("a+")

    def test_ensure_transition_idempotent(self):
        stg = STG()
        stg.add_signal("a", SignalKind.OUTPUT)
        assert stg.ensure_transition("a+") == stg.ensure_transition("a+")
        assert stg.transitions == ["a+"]

    def test_transitions_of_signal_and_polarity(self):
        stg = STG()
        stg.add_signal("a", SignalKind.OUTPUT)
        stg.add_signal("b", SignalKind.INPUT)
        for label in ("a+", "a-", "a+/2", "b+"):
            stg.add_transition(label)
        assert sorted(stg.transitions_of_signal("a")) == ["a+", "a+/2", "a-"]
        assert sorted(stg.transitions_of("a", "+")) == ["a+", "a+/2"]
        assert stg.transitions_of("b", "-") == []

    def test_connect_creates_implicit_place(self):
        stg = STG()
        stg.add_signal("a", SignalKind.OUTPUT)
        place = stg.connect("a+", "a-")
        assert place == "<a+,a->"
        assert stg.net.preset_of_place(place) == {"a+"}
        assert stg.net.postset_of_place(place) == {"a-"}

    def test_connect_twice_creates_second_place(self):
        stg = STG()
        stg.add_signal("a", SignalKind.OUTPUT)
        first = stg.connect("a+", "a-")
        second = stg.connect("a+", "a-")
        assert first != second

    def test_set_initial_marking_between(self):
        stg = STG()
        stg.add_signal("a", SignalKind.OUTPUT)
        stg.connect("a-", "a+")
        stg.set_initial_marking_between("a-", "a+")
        assert stg.initial_marking()["<a-,a+>"] == 1

    def test_set_initial_marking_between_missing_place(self):
        stg = STG()
        stg.add_signal("a", SignalKind.OUTPUT)
        with pytest.raises(STGError):
            stg.set_initial_marking_between("a-", "a+")

    def test_label_of_unlabelled_transition(self):
        stg = STG()
        stg.net.add_transition("raw")
        with pytest.raises(STGError):
            stg.label_of("raw")


class TestBehaviourHelpers:
    def test_enabled_labels_and_signals(self):
        stg = handshake()
        m0 = stg.initial_marking()
        assert stg.enabled_labels(m0) == ["r+"]
        assert stg.enabled_signals(m0) == {"r"}

    def test_fire_follows_net_semantics(self):
        stg = handshake()
        m0 = stg.initial_marking()
        m1 = stg.fire("r+", m0)
        assert stg.enabled_labels(m1) == ["a+"]

    def test_statistics(self):
        stats = mutex_element().statistics()
        assert stats["places"] == 9
        assert stats["transitions"] == 8
        assert stats["signals"] == 4
        assert stats["inputs"] == 2
        assert stats["outputs"] == 2

    def test_copy_is_independent(self):
        stg = handshake()
        clone = stg.copy()
        clone.add_signal("extra", SignalKind.INTERNAL)
        assert not stg.has_signal("extra")
        assert clone.initial_values == stg.initial_values

    def test_repr_mentions_name(self):
        assert "handshake" in repr(handshake())
