"""Acceptance criterion: the analyzer gates this repository and the
repository passes it.

``python -m tools.analysis src tests tools`` must exit 0 -- every
determinism finding in src/repro was fixed (not baselined), the schema
and facade contracts hold, and every registered name is tested and
documented."""

import json
import subprocess
import sys

from tools.analysis.cli import main


def test_default_invocation_is_clean(in_repo_root, capsys):
    assert main(["src", "tests", "tools"]) == 0
    out = capsys.readouterr().out
    assert "0 finding(s)" in out


def test_module_entry_point(in_repo_root):
    proc = subprocess.run(
        [sys.executable, "-m", "tools.analysis", "src", "tests", "tools"],
        capture_output=True, text=True, cwd=in_repo_root)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "files checked" in proc.stdout


def test_baseline_is_empty(in_repo_root):
    """No findings were grandfathered: the committed baseline holds
    zero entries (satellite: fix determinism findings, don't baseline
    them)."""
    with open("tools/analysis/baseline.json", encoding="utf-8") as handle:
        assert json.load(handle)["findings"] == []


def test_json_artifact_for_ci(in_repo_root, tmp_path, capsys):
    report = tmp_path / "analysis.json"
    assert main(["src", "tests", "tools", "--json", str(report)]) == 0
    capsys.readouterr()
    payload = json.loads(report.read_text())
    assert payload["schema"] == 1
    assert payload["counts"]["new"] == 0
    assert payload["files_checked"] > 100
