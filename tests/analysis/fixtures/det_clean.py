"""Non-firing fixtures for the determinism pass: every unordered value
here is consumed in an order-insensitive way (or laundered through
``sorted``), and all randomness is explicitly seeded.  The pass must
report nothing in this file."""

import random


def stable_views(net, codes):
    places = sorted(net.preset_of_transition("t"))       # laundered
    label = ",".join(str(p) for p in places)             # ordered input
    width = len(set(codes))                              # len: insensitive
    lowest = min(set(codes))                             # min: insensitive
    return places, label, width, lowest


def collect(codes):
    seen = set()
    for code in codes:
        seen.add(code)                                   # set.add commutes
    complete = all(code in seen for code in codes)       # membership only
    total = sum(sorted(seen))                            # laundered sum
    ordered = [entry for entry in sorted(seen)]          # laundered list
    return complete, total, ordered


def seeded_family(seed, scale):
    rng = random.Random(1000003 * seed + scale)          # seeded instance
    return [rng.random() for _ in range(scale)]


class Token:
    """hash() for identity (dict keys), never for ordering."""

    def __init__(self, bits):
        self.bits = tuple(bits)

    def __hash__(self):
        return hash(self.bits)

    def __eq__(self, other):
        return isinstance(other, Token) and self.bits == other.bits
