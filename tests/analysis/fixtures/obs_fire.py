"""Fixture: observability-hygiene violations (RA501, RA502)."""

from repro import obs
from repro.obs import event, span


def dynamic_span_names(tracer, metrics, check_name):
    with obs.span(f"check-{check_name}"):  # must-fire: RA501
        pass
    with tracer.span("check:" + check_name):  # must-fire: RA501
        pass
    tracer.event(check_name)  # must-fire: RA501
    with span(check_name.upper()):  # must-fire: RA501
        pass
    event("literal-is-fine", detail=check_name)
    metrics.counter("iterations-" + check_name)  # must-fire: RA501
    metrics.histogram("frontier")  # literal: clean


def fingerprint(material, tracer):
    obs.event("hashing")  # must-fire: RA502
    with tracer.span("fingerprint"):  # must-fire: RA502
        pass
    return material


def stable_dict(result, metrics):
    metrics.counter("stable-rows")  # must-fire: RA502
    return dict(result)


def unrelated_helper(tracer):
    with tracer.span("compute"):
        pass
