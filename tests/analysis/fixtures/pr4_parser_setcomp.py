"""Must-fire regression fixture: the PR-4 ``.g`` parser bug.

Reproduction of ``repro.stg.parser._build_graph`` *before* commit
a5c2505: graph tokens were collected into a set comprehension and the
net's transitions/places declared by iterating it, so declaration order
-- and with it the BDD variable order and every traversal statistic --
depended on ``PYTHONHASHSEED``.  The determinism pass must flag both
iteration sites (the must-fire comments mark the expected lines).
"""


def _is_transition_token(token):
    return "+" in token or "-" in token or "/" in token


def build_graph(stg, graph_lines):
    tokens = {token for line in graph_lines for token in line}
    place_names = {t for t in tokens if not _is_transition_token(t)}
    for token in tokens:  # must-fire: RA001
        if _is_transition_token(token):
            stg.declare_transition(token)
    for name in place_names:  # must-fire: RA001
        stg.declare_place(name)
