"""Fixture: literal-named, fingerprint-free observability (clean)."""

from repro import obs
from repro.obs import span


def instrumented(manager, tracer, metrics, name, phase):
    with obs.span("traversal", manager=manager, strategy=name):
        pass
    with obs.span("check", check=name, phase=phase):
        pass
    with span("parse"):
        pass
    tracer.event("iteration", iteration=3, frontier_nodes=17)
    metrics.counter("entries").add(1)
    metrics.gauge("live-nodes").set(42)


def fingerprint(material):
    # Hashing without any obs emission: RA502 has nothing to say.
    return sorted(material.items())


def lookup(table, span):
    # A local called "span" is not the obs surface.
    return table[span]
