"""Firing fixtures for the rest of the determinism pass (RA001-RA003)."""

import random


def fingerprint_material(codes):
    unstable = set(codes)
    return ",".join(str(code) for code in unstable)  # must-fire: RA001


def positions_by_set_order(nodes):
    return {n: i for i, n in enumerate(set(nodes))}  # must-fire: RA001


def materialise(reached):
    states = frozenset(reached)
    return list(states)  # must-fire: RA001


def merged_support(left, right):
    union = left | set(right)
    return tuple(union)  # must-fire: RA001


def rank_by_hash(items):
    return sorted(items, key=lambda item: hash(item))  # must-fire: RA002


def first_by_identity(items):
    items.sort(key=id)  # must-fire: RA002
    return items[0]


def jitter(values):
    return [v + random.random() for v in values]  # must-fire: RA003


def pick(values):
    return random.choice(values)  # must-fire: RA003
