"""Firing fixture for RA401: this file intentionally does not parse."""

def broken(:
    return None
