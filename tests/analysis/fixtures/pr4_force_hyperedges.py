"""Must-fire regression fixture: the PR-4 FORCE hyperedge bug.

Reproduction of ``repro.core.encoding.SymbolicEncoding
._co_occurrence_groups`` *before* commit a5c2505: hyperedge member
lists were built by iterating the hash-ordered pre/post-sets, so the
FORCE accumulator summed its floats in hash order and the computed
variable order varied between interpreter processes.  The determinism
pass must flag the two list comprehensions and the float summation
(the must-fire comments mark the expected lines).
"""


class ForceOrdering:
    def __init__(self, stg, place_variable):
        self.stg = stg
        self.place_variable = place_variable

    def co_occurrence_groups(self):
        groups = []
        for transition in self.stg.net.transitions:
            group = [self.place_variable(p)  # must-fire: RA001
                     for p in self.stg.net.preset_of_transition(transition)]
            group += [self.place_variable(p)  # must-fire: RA001
                      for p in self.stg.net.postset_of_transition(transition)]
            groups.append(group)
        return groups

    def center_of(self, hyperedge, positions):
        members = frozenset(hyperedge)
        total = sum(positions[v] for v in members)  # must-fire: RA001
        return total / len(members)
