"""Non-firing fixtures for the schema-contract pass: complete
round-trips (explicit and ``fields()``-driven), a live strip list and a
schema-versioned fingerprint.  The pass must report nothing here."""

import hashlib
from dataclasses import dataclass, fields

SCHEMA_VERSION = 2

VOLATILE_ROUNDTRIP_FIELDS = ("wall_time_s",)


@dataclass
class RoundTrip:
    name: str = ""
    wall_time_s: float = 0.0
    _derived: int = 0  # private: not part of the schema

    def to_dict(self):
        return {"name": self.name, "wall_time_s": self.wall_time_s}

    @classmethod
    def from_dict(cls, data):
        return cls(name=data["name"], wall_time_s=data["wall_time_s"])


@dataclass
class Generic:
    alpha: int = 0
    beta: int = 0

    def to_dict(self):
        return {spec.name: getattr(self, spec.name)
                for spec in fields(self)}

    @classmethod
    def from_dict(cls, data):
        known = {spec.name for spec in fields(cls)}
        return cls(**{key: value for key, value in data.items()
                      if key in known})


def stable_fingerprint(g_text):
    material = f"{SCHEMA_VERSION}:{g_text}"
    return hashlib.sha256(material.encode("utf-8")).hexdigest()
