"""Non-firing fixture for the lint pass: used imports, a satisfied
``__all__`` and no duplicate definitions.  Must report nothing."""

import os

__all__ = ["working_directory"]


def working_directory():
    return os.getcwd()
