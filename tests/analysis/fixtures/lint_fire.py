"""Firing fixtures for the lint pass (RA402-RA404)."""

import os  # must-fire: RA402

__all__ = ["missing_name"]  # the RA403 finding reports line 1


def duplicated():
    return 1


def duplicated():  # must-fire: RA404
    return 2
