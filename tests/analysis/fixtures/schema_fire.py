"""Firing fixtures for the schema-contract pass (RA101-RA104)."""

import hashlib
from dataclasses import dataclass

# "kept" exists (a Lossy field); the other entry survives no rename.
VOLATILE_DEMO_FIELDS = ("kept", "no_such_field_anywhere")  # must-fire: RA103


class OneWay:  # must-fire: RA101
    def to_dict(self):
        return {"value": 1}


@dataclass
class Lossy:
    kept: int = 0
    dropped: int = 0

    def to_dict(self):  # must-fire: RA102
        return {"kept": self.kept}

    @classmethod
    def from_dict(cls, data):  # must-fire: RA102
        return cls(kept=data["kept"])


def task_fingerprint(material):  # must-fire: RA104
    return hashlib.sha256(material.encode("utf-8")).hexdigest()
