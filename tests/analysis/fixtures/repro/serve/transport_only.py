"""Non-firing fixture for RA203: serve-daemon code that stays on the
transport/caching side of the line -- stores, the worker primitive, the
facade's config type.  Must report nothing."""

from repro.api.config import EngineConfig
from repro.cache import BDDStore
from repro.runner.store import RunStore
from repro.runner.worker import execute_payload_async


async def handle_check(payload, state_dir):
    EngineConfig.from_dict(dict(payload.get("config") or {}))
    RunStore(state_dir)
    BDDStore.shared(state_dir)
    return await execute_payload_async(payload)
