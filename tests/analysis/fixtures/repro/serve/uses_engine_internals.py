"""Firing fixture for RA203: a serve-layer module reaching verification
machinery.  The path fragment ``repro/serve/`` marks this as daemon
code, which is transport/queueing/caching only."""

import repro.engines  # must-fire: RA203
from repro.core.pipeline import VerificationPipeline  # must-fire: RA203
from repro.sg.checker import ExplicitVerification  # must-fire: RA203


def handle_check(stg, config):
    engine = repro.engines.get(config.engine)
    pipeline = VerificationPipeline(stg)  # must-fire: RA203
    oracle = ExplicitVerification(stg)  # must-fire: RA203
    return engine, pipeline, oracle
