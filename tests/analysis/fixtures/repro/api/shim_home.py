"""Non-firing fixture: the facade layer itself may construct the
deprecation shims (the path fragment ``repro/api/`` allows it)."""

from repro.core.checker import ImplementabilityChecker


def legacy_entry(stg):
    return ImplementabilityChecker(stg)
