"""Firing fixture for RA204: delta code reaching verdict machinery.

The path fragment ``repro/delta/`` marks this as incremental-
verification code, whose only sanctioned influence on a run is the
traversal seed.
"""

import repro.synthesis  # must-fire: RA204
from repro.api.checks import resolve_checks  # must-fire: RA204
from repro.report import ImplementabilityReport  # must-fire: RA204
from repro.sg.checker import ExplicitVerification  # must-fire: RA204


def sneak_a_verdict(pipeline, stg):
    report = ImplementabilityReport(name=stg.name)
    pipeline._reached = None  # must-fire: RA204
    pipeline._checker._verdicts = {}  # must-fire: RA204
    return report, resolve_checks(None), ExplicitVerification, \
        repro.synthesis
