"""Clean fixture for RA204: delta code that stays inside its lane.

Imports only the structural/traversal layers and communicates with the
pipeline exclusively through its public seeding attributes; its own
private bookkeeping (``self._cache``) is allowed.
"""

from repro.core.encoding import SymbolicEncoding
from repro.stg.parser import parse_g


class SeedPlanner:
    def __init__(self):
        self._cache = {}

    def plan(self, pipeline, g_text, seed):
        self._cache[g_text] = parse_g(g_text)
        pipeline.seed_reached = seed
        pipeline.seed_closed = True
        return SymbolicEncoding
