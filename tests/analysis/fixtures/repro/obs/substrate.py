"""Fixture: the obs substrate forwards variable names by design."""


class Tracer:
    def span(self, name, **attrs):
        return (name, attrs)

    def event(self, name, **attrs):
        return (name, attrs)


def span(name, **attrs):
    tracer = Tracer()
    # The module-level helper forwards the caller's name through a
    # variable -- exempt from RA501 (the rule binds emission sites).
    return tracer.span(name, **attrs)
