"""Clean fixture for RA205: stable views and fingerprints that keep
fabric scheduling metadata out -- including the sanctioned pattern of
*stripping* provenance wholesale (no flagged identifier needed), and
prose mentions of leases and retries in docstrings, which never flag.
Fabric words inside ordinary identifiers (``placeholder``) do not
token-match either."""

import hashlib
import json


class CleanResult:
    def stable_dict(self):
        """The timing-free view (lease and retry provenance already
        stripped with the rest of the provenance dict)."""
        data = dict(self.payload)
        del data["duration"]
        del data["provenance"]
        data.setdefault("placeholder", None)
        return data

    def stable_json_dict(self):
        return {"entries": [entry.stable_dict()
                            for entry in self.entries]}


class CleanTask:
    @property
    def fingerprint(self):
        config = dict(self.config)
        for knob in self.execution_knobs:
            config.pop(knob, None)
        blob = json.dumps({"g_text": self.g_text, "config": config},
                          sort_keys=True)
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def coordinate(lease, policy, attempt):
    """Fabric metadata outside stable-view functions is fine -- this is
    exactly where lease holders and retry attempts belong."""
    return {"holder": lease.holder, "attempt": attempt,
            "backoff": policy.delay_for(attempt)}
