"""Firing fixture for the facade-purity pass: a runner-layer module
reaching verification internals.  The path fragment ``repro/runner/``
marks this as front-end code."""

from repro.core.checker import ImplementabilityChecker  # must-fire: RA202
from repro.core.pipeline import VerificationPipeline  # must-fire: RA202


def run_entry(stg, config):
    checker = ImplementabilityChecker(stg)  # must-fire: RA201
    pipeline = VerificationPipeline(stg)  # must-fire: RA202
    return checker, pipeline
