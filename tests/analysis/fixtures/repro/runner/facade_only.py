"""Non-firing fixture for the facade-purity pass: front-end code that
verifies exclusively through ``repro.api``.  Must report nothing."""

from repro.api import run as api_run
from repro.api.config import EngineConfig


def run_entry(g_text):
    return api_run(g_text, EngineConfig())
