"""Firing fixture for RA205: fingerprint / stable-view material that
references fabric scheduling metadata.  Every flagged line lets *how*
a verdict was computed (which lease holder, after how many retries,
under what fault plan) perturb a cache key or a byte-identical stable
result."""

import hashlib
import json


class LeakyResult:
    def stable_dict(self):
        data = dict(self.payload)
        data["lease_holder"] = self.holder  # must-fire: RA205
        data["attempts"] = self.attempts  # must-fire: RA205
        return data

    def stable_json_dict(self):
        entries = [entry.stable_dict() for entry in self.entries]
        return {"entries": entries,
                "retry_policy": self.policy}  # must-fire: RA205


class LeakyTask:
    @property
    def fingerprint(self):
        material = {"g_text": self.g_text, "config": self.config}
        material["fault_plan"] = self.fault_plan  # must-fire: RA205
        blob = json.dumps(material, sort_keys=True)
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def backoff_fingerprint(task, lease):  # must-fire: RA205
    return hashlib.sha256(repr(task).encode("utf-8")).hexdigest()
