"""Test harness for the static analyzer (``tools.analysis``).

Makes the repo root importable (the ``tools`` package is not installed)
and provides fixtures to run individual passes over the snippet files in
``tests/analysis/fixtures/`` -- which the analyzer's default
configuration deliberately excludes, because they contain intentional
violations.  Firing fixtures mark their expected findings with
``# must-fire: RAxxx`` comments; the ``expected_lines`` fixture reads
them back so tests assert rule IDs *and* line numbers."""

import os
import re
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))))
if REPO_ROOT not in sys.path:
    sys.path.insert(0, REPO_ROOT)

FIXTURES = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "fixtures")

_MARKER = re.compile(r"#\s*must-fire:\s*(RA\d+)")


@pytest.fixture
def repo_root():
    return REPO_ROOT


@pytest.fixture
def fixtures_dir():
    return FIXTURES


@pytest.fixture
def fixture_path():
    def resolve(name):
        return os.path.join(FIXTURES, *name.split("/"))
    return resolve


@pytest.fixture
def fixture_config():
    """Config factory treating the fixture tree as library code."""
    from tools.analysis.core import Config, normalise

    def build(**overrides):
        settings = dict(library_prefixes=(normalise(FIXTURES),),
                        exclude=(), tests_root=None, readme_path=None)
        settings.update(overrides)
        return Config(**settings)
    return build


@pytest.fixture
def run_pass(fixture_path, fixture_config):
    """Run one pass over named fixture files, return its findings."""
    from tools.analysis.core import Project

    def run(pass_module, *names, config=None):
        paths = [fixture_path(name) for name in names]
        project = Project.load(paths, config or fixture_config())
        return pass_module.run(project)
    return run


@pytest.fixture
def expected_lines(fixture_path):
    """Line numbers marked ``# must-fire: <rule>`` in a fixture."""
    def read(name, rule):
        with open(fixture_path(name), encoding="utf-8") as handle:
            return [lineno
                    for lineno, line in enumerate(handle, start=1)
                    if any(match.group(1) == rule
                           for match in _MARKER.finditer(line))]
    return read


@pytest.fixture
def in_repo_root(monkeypatch):
    monkeypatch.chdir(REPO_ROOT)
    return REPO_ROOT
