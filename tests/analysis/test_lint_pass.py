"""Lint pass (RA401-RA404): the four rules folded in from the old
``tools/lint.py``, plus the shim that keeps ``make lint`` working."""

import subprocess
import sys

from tools.analysis import lintpass


def by_rule(findings, rule):
    return [finding for finding in findings if finding.rule == rule]


class TestFiring:
    FIXTURE = "lint_fire.py"

    def test_unused_import_fires_on_marked_line(self, run_pass,
                                                expected_lines):
        findings = by_rule(run_pass(lintpass, self.FIXTURE), "RA402")
        assert [f.line for f in findings] == \
            expected_lines(self.FIXTURE, "RA402")
        assert "'os'" in findings[0].message

    def test_undefined_export_fires(self, run_pass):
        finding, = by_rule(run_pass(lintpass, self.FIXTURE), "RA403")
        assert "'missing_name'" in finding.message
        assert finding.line == 1  # reported against the module

    def test_duplicate_definition_fires_on_marked_line(self, run_pass,
                                                       expected_lines):
        findings = by_rule(run_pass(lintpass, self.FIXTURE), "RA404")
        assert [f.line for f in findings] == \
            expected_lines(self.FIXTURE, "RA404")
        assert "'duplicated'" in findings[0].message


def test_syntax_error_fires_with_location(run_pass):
    finding, = run_pass(lintpass, "lint_syntax_error.py")
    assert finding.rule == "RA401"
    assert finding.line == 3  # the `def broken(:` line
    assert "syntax error" in finding.message


def test_clean_fixture_reports_nothing(run_pass):
    assert run_pass(lintpass, "lint_clean.py") == []


def test_lint_rules_apply_outside_library_prefixes(run_pass,
                                                   fixture_config):
    """RA4xx has scope 'all': it fires even when the fixture tree is
    not configured as library code (unlike the determinism rules)."""
    config = fixture_config(library_prefixes=("src/",))
    findings = run_pass(lintpass, "lint_fire.py", config=config)
    assert {f.rule for f in findings} == {"RA402", "RA403", "RA404"}


def run_lint_shim(repo_root, target):
    """Run ``tools/lint.py`` on ``target`` with ruff forced absent so
    the shim falls back to the tools.analysis RA4 pass."""
    script = (
        "import shutil, sys, runpy\n"
        "shutil.which = lambda name: None\n"
        f"sys.argv = ['lint.py', {str(target)!r}]\n"
        f"sys.path.insert(0, {repo_root!r})\n"
        f"runpy.run_path({repo_root!r} + '/tools/lint.py', "
        "run_name='__main__')\n")
    return subprocess.run([sys.executable, "-c", script],
                          capture_output=True, text=True, cwd=repo_root)


def test_lint_shim_runs_the_ra4_pass(repo_root, fixture_path, tmp_path):
    """``python tools/lint.py <file>`` still works and reports the
    folded-in rules.  The fixture is copied out of the fixtures tree
    first: the shim honours the analyzer's default exclusions."""
    target = tmp_path / "dirty.py"
    with open(fixture_path("lint_fire.py"), encoding="utf-8") as handle:
        target.write_text(handle.read())
    proc = run_lint_shim(repo_root, target)
    assert proc.returncode == 1
    assert "RA402" in proc.stdout
    assert "lint (tools.analysis):" in proc.stdout


def test_lint_shim_clean_run_exits_zero(repo_root, fixture_path,
                                        tmp_path):
    target = tmp_path / "clean.py"
    with open(fixture_path("lint_clean.py"), encoding="utf-8") as handle:
        target.write_text(handle.read())
    proc = run_lint_shim(repo_root, target)
    assert proc.returncode == 0, proc.stdout + proc.stderr
