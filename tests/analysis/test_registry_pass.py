"""Registry-hygiene pass (RA301-RA302): every literal registration is
exercised under tests/ and documented in the README."""

import os

from tools.analysis import registry
from tools.analysis.core import Config, Project, normalise


def build_project(tmp_path, readme="", tests=""):
    src = tmp_path / "src" / "repro"
    src.mkdir(parents=True)
    (src / "myengines.py").write_text(
        "def register(name, engine):\n    pass\n\n\n"
        "register('alpha', object())\n"
        "register('beta', object())\n")
    (src / "checks.py").write_text(
        "def register_check(spec):\n    pass\n\n\n"
        "class CheckSpec:\n"
        "    def __init__(self, name):\n        self.name = name\n\n\n"
        "register_check(CheckSpec(name='gamma'))\n")
    tests_dir = tmp_path / "tests"
    tests_dir.mkdir()
    (tests_dir / "test_things.py").write_text(tests)
    readme_path = tmp_path / "README.md"
    readme_path.write_text(readme)
    config = Config(
        library_prefixes=(normalise(str(src)),),
        exclude=(),
        tests_root=str(tests_dir),
        readme_path=str(readme_path))
    return Project.load([str(src)], config)


def findings_by_rule(findings, rule):
    return [f for f in findings if f.rule == rule]


def test_untested_and_undocumented_names_fire(tmp_path):
    project = build_project(
        tmp_path,
        readme="| `alpha` | the alpha engine |\n",
        tests="run('alpha')\nassert 'gamma'\n")
    findings = registry.run(project)
    untested = findings_by_rule(findings, "RA301")
    assert [f.message for f in untested] == [
        "registered engine 'beta' is never exercised under "
        f"{project.config.tests_root}/"]
    undocumented = {f.message.split("'")[1]
                    for f in findings_by_rule(findings, "RA302")}
    assert undocumented == {"beta", "gamma"}


def test_fully_covered_registrations_are_clean(tmp_path):
    project = build_project(
        tmp_path,
        readme="`alpha` `beta` `gamma`\n",
        tests="alpha beta gamma\n")
    assert registry.run(project) == []


def test_kind_comes_from_the_registry_module(tmp_path):
    project = build_project(tmp_path)
    kinds = {(r.kind, r.name)
             for r in registry._literal_registrations(project)}
    assert kinds == {("engine", "alpha"), ("engine", "beta"),
                     ("check", "gamma")}


def test_word_boundary_matching(tmp_path):
    """'beta' inside 'betamax' does not count as exercised."""
    project = build_project(tmp_path, readme="alpha beta gamma",
                            tests="alpha betamax gamma")
    untested = findings_by_rule(registry.run(project), "RA301")
    assert len(untested) == 1 and "'beta'" in untested[0].message


def test_real_repo_registries_are_covered(in_repo_root):
    """The repo's own engines/backends/checks are all tested and
    documented -- the invariant this pass now gates."""
    project = Project.load(["src"], Config())
    registrations = registry._literal_registrations(project)
    names = {r.name for r in registrations}
    # the three registries the facade exposes
    assert {"symbolic", "explicit", "process", "thread", "serial",
            "csc", "consistency"} <= names
    assert registry.run(project) == []


def test_missing_readme_is_tolerated(tmp_path):
    project = build_project(tmp_path, readme="", tests="alpha beta gamma")
    os.remove(project.config.readme_path)
    findings = registry.run(project)
    assert findings_by_rule(findings, "RA301") == []
    assert len(findings_by_rule(findings, "RA302")) == 3
