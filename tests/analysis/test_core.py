"""Analyzer infrastructure: suppressions, baselines, rule toggling,
path handling, and the JSON report shape."""

import json

import pytest

from tools.analysis import baseline
from tools.analysis.cli import analyze_paths, main
from tools.analysis.core import (RULES, Config, Finding, iter_python_files,
                                 normalise, suppressions_of)


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------
class TestSuppressions:
    def test_inline_comment_suppresses_its_own_line(self):
        text = "x = list(seen)  # repro: allow[RA001] insertion order ok\n"
        assert suppressions_of(text) == {1: {"RA001"}}

    def test_standalone_comment_suppresses_the_next_line(self):
        text = ("# repro: allow[RA001] iteration order laundered below\n"
                "x = list(seen)\n")
        assert suppressions_of(text) == {2: {"RA001"}}

    def test_multiple_rules_in_one_suppression(self):
        text = "y = 1  # repro: allow[RA001, RA002] both excused\n"
        assert suppressions_of(text) == {1: {"RA001", "RA002"}}

    def test_suppression_silences_a_finding_end_to_end(self, tmp_path,
                                                       capsys):
        target = tmp_path / "suppressed.py"
        target.write_text(
            "def collect(items):\n"
            "    seen = set(items)\n"
            "    out = []\n"
            "    # repro: allow[RA001] consumer sorts downstream\n"
            "    for item in seen:\n"
            "        out.append(item)\n"
            "    return out\n")
        exit_code = main([str(target), "--library", str(tmp_path),
                          "--exclude", "", "--no-baseline"])
        assert exit_code == 0
        assert "1 suppressed" in capsys.readouterr().out

    def test_unrelated_rule_is_not_suppressed(self, tmp_path):
        target = tmp_path / "wrong_rule.py"
        target.write_text(
            "def collect(items):\n"
            "    seen = set(items)\n"
            "    out = []\n"
            "    for item in seen:  # repro: allow[RA999] wrong id\n"
            "        out.append(item)\n"
            "    return out\n")
        config = Config(library_prefixes=(normalise(str(tmp_path)),),
                        exclude=(), tests_root=None, readme_path=None)
        result = analyze_paths([str(target)], config)
        assert [f.rule for f in result.findings] == ["RA001"]
        assert result.suppressed == []


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------
class TestBaseline:
    FINDING = Finding(rule="RA001", path="src/repro/x.py", line=7,
                      message="iteration over set 'seen' ...")

    def test_write_load_round_trip(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        baseline.write(path, [self.FINDING, self.FINDING])  # dedups
        keys = baseline.load(path)
        assert keys == {self.FINDING.key}

    def test_split_partitions_on_key_not_line(self):
        moved = Finding(rule="RA001", path="src/repro/x.py", line=99,
                        message="iteration over set 'seen' ...")
        new, baselined = baseline.split([moved], {self.FINDING.key})
        assert new == [] and baselined == [moved]

    def test_missing_baseline_is_empty(self, tmp_path):
        assert baseline.load(str(tmp_path / "absent.json")) == set()

    def test_malformed_baseline_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('["not", "an", "object"]')
        with pytest.raises(ValueError, match="malformed baseline"):
            baseline.load(str(path))

    def test_malformed_baseline_is_a_usage_error(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text('{"findings": 12}')
        assert main([str(path.parent), "--baseline", str(path)]) == 2
        assert "malformed baseline" in capsys.readouterr().err

    def test_baselined_findings_do_not_fail_the_run(self, tmp_path,
                                                    capsys):
        target = tmp_path / "legacy.py"
        target.write_text("def collect(items):\n"
                          "    seen = set(items)\n"
                          "    return [item for item in seen]\n")
        base = str(tmp_path / "baseline.json")
        write_args = [str(target), "--library", str(tmp_path),
                      "--exclude", "", "--baseline", base]
        assert main(write_args + ["--write-baseline"]) == 0
        capsys.readouterr()
        assert main(write_args) == 0
        out = capsys.readouterr().out
        assert "0 finding(s) (1 baselined" in out
        # without the baseline the same run fails
        assert main(write_args + ["--no-baseline"]) == 1


# ----------------------------------------------------------------------
# Rule toggling and scoping
# ----------------------------------------------------------------------
class TestConfig:
    def test_select_is_a_prefix_filter(self):
        config = Config(select=("RA0", "RA401"))
        assert config.rule_enabled("RA001")
        assert config.rule_enabled("RA401")
        assert not config.rule_enabled("RA402")
        assert not config.rule_enabled("RA101")

    def test_ignore_beats_select(self):
        config = Config(select=("RA0",), ignore=("RA002",))
        assert config.rule_enabled("RA001")
        assert not config.rule_enabled("RA002")

    def test_library_scope_rules_need_a_library_path(self):
        config = Config(library_prefixes=("src/",))
        assert config.rule_applies("RA001", "src/repro/x.py")
        assert not config.rule_applies("RA001", "tools/x.py")
        assert config.rule_applies("RA402", "tools/x.py")  # scope "all"

    def test_every_rule_id_is_unique_and_catalogued(self):
        assert len(RULES) == 20
        assert all(rule_id == rule.id for rule_id, rule in RULES.items())
        assert all(rule.scope in ("library", "all")
                   for rule in RULES.values())


def test_fixture_tree_is_excluded_by_default(in_repo_root):
    """The analyzer's own intentional-violation fixtures never leak
    into a default repo run."""
    files = [normalise(p) for p in
             iter_python_files(["tests/analysis"], Config())]
    assert files  # the test modules themselves are analyzed
    assert not any("fixtures" in path for path in files)


def test_normalise_makes_paths_repo_relative(in_repo_root, repo_root):
    assert normalise(repo_root + "/src/repro") == "src/repro"
    assert normalise("src/./repro") == "src/repro"


# ----------------------------------------------------------------------
# JSON report
# ----------------------------------------------------------------------
def test_json_report_shape(tmp_path, capsys):
    target = tmp_path / "dirty.py"
    target.write_text("def collect(items):\n"
                      "    seen = set(items)\n"
                      "    return [item for item in seen]\n")
    report = tmp_path / "report.json"
    exit_code = main([str(target), "--library", str(tmp_path),
                      "--exclude", "", "--no-baseline",
                      "--json", str(report)])
    assert exit_code == 1
    payload = json.loads(report.read_text())
    assert payload["schema"] == 1
    assert payload["files_checked"] == 1
    assert payload["counts"] == {"new": 1, "baselined": 0,
                                 "suppressed": 0}
    finding, = payload["findings"]
    assert finding["rule"] == "RA001"
    assert finding["line"] == 3
    assert set(finding) == {"rule", "path", "line", "message"}


def test_list_rules_covers_the_catalogue(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in RULES:
        assert rule_id in out


def test_nonexistent_path_is_a_usage_error(capsys):
    assert main(["definitely/not/here"]) == 2
    assert "no such path" in capsys.readouterr().err
