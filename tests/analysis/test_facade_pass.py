"""Facade-purity pass (RA201-RA205): shims constructed only in the
facade layer, front-end code bound to repro.api, serve code kept to
transport, delta code kept to traversal seeding, fabric scheduling
metadata kept out of fingerprints and stable views."""

from tools.analysis import facade


class TestFiring:
    FIXTURE = "repro/runner/uses_internals.py"

    def test_marked_lines_fire(self, run_pass, expected_lines):
        findings = run_pass(facade, self.FIXTURE)
        for rule in ("RA201", "RA202"):
            assert sorted(f.line for f in findings
                          if f.rule == rule) == \
                expected_lines(self.FIXTURE, rule), rule

    def test_shim_call_reports_the_facade_alternative(self, run_pass):
        findings = run_pass(facade, self.FIXTURE)
        shim, = [f for f in findings if f.rule == "RA201"]
        assert "repro.api" in shim.message


class TestServeFiring:
    FIXTURE = "repro/serve/uses_engine_internals.py"

    def test_marked_lines_fire(self, run_pass, expected_lines):
        findings = run_pass(facade, self.FIXTURE)
        assert sorted(f.line for f in findings if f.rule == "RA203") == \
            expected_lines(self.FIXTURE, "RA203")

    def test_serve_violations_do_not_double_report(self, run_pass):
        # The serve fragments are not frontend fragments: one violation,
        # one rule.
        findings = run_pass(facade, self.FIXTURE)
        assert {f.rule for f in findings} == {"RA203"}

    def test_messages_point_at_the_facade(self, run_pass):
        findings = run_pass(facade, self.FIXTURE)
        assert all("repro.api" in f.message for f in findings)


class TestDeltaFiring:
    FIXTURE = "repro/delta/touches_verdicts.py"

    def test_marked_lines_fire(self, run_pass, expected_lines):
        findings = run_pass(facade, self.FIXTURE)
        assert sorted(f.line for f in findings if f.rule == "RA204") == \
            expected_lines(self.FIXTURE, "RA204")

    def test_delta_violations_report_only_ra204(self, run_pass):
        # The delta fragments overlap neither the frontend nor the
        # serve fragments: one violation, one rule.
        findings = run_pass(facade, self.FIXTURE)
        assert {f.rule for f in findings} == {"RA204"}

    def test_messages_name_the_seeding_contract(self, run_pass):
        findings = run_pass(facade, self.FIXTURE)
        assert all("seed" in f.message for f in findings)


def test_seeding_only_delta_code_is_clean(run_pass):
    assert run_pass(facade, "repro/delta/seeding_only.py") == []


def test_transport_only_serve_code_is_clean(run_pass):
    assert run_pass(facade, "repro/serve/transport_only.py") == []


def test_facade_only_frontend_is_clean(run_pass):
    assert run_pass(facade, "repro/runner/facade_only.py") == []


def test_facade_layer_may_construct_shims(run_pass):
    assert run_pass(facade, "repro/api/shim_home.py") == []


def test_rules_scope_to_library_code(run_pass, fixture_config):
    config = fixture_config(library_prefixes=("src/",))
    assert run_pass(facade, "repro/runner/uses_internals.py",
                    config=config) == []


class TestFabricStableLeak:
    FIXTURE = "repro/runner/leaky_stable_view.py"

    def test_marked_lines_fire(self, run_pass, expected_lines):
        findings = run_pass(facade, self.FIXTURE)
        assert sorted(f.line for f in findings if f.rule == "RA205") == \
            expected_lines(self.FIXTURE, "RA205")

    def test_leaks_report_only_ra205(self, run_pass):
        findings = run_pass(facade, self.FIXTURE)
        assert {f.rule for f in findings} == {"RA205"}

    def test_messages_name_the_leaking_identifier(self, run_pass):
        findings = run_pass(facade, self.FIXTURE)
        assert any("'fault_plan'" in f.message for f in findings)
        assert all("fingerprints or" in f.message for f in findings)

    def test_one_finding_per_leaking_line(self, run_pass):
        # data["lease_holder"] = self.holder carries two flagged
        # identifiers; the pass reports the line once.
        findings = run_pass(facade, self.FIXTURE)
        lines = [f.line for f in findings if f.rule == "RA205"]
        assert len(lines) == len(set(lines))


def test_provenance_stripping_stable_views_are_clean(run_pass):
    # The sanctioned pattern: strip the whole provenance dict (fabric
    # metadata rides inside it), keep fabric words to docstrings and
    # non-stable functions, and token matching ignores "placeholder".
    assert run_pass(facade, "repro/runner/stable_view_clean.py") == []
