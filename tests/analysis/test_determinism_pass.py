"""Determinism pass (RA001-RA003): fixture-driven firing and
non-firing cases, including the two PR-4 PYTHONHASHSEED bugs as
must-fire regression reproductions."""

from tools.analysis import determinism
from tools.analysis.cli import main


def lines_of(findings, rule):
    return sorted(finding.line for finding in findings
                  if finding.rule == rule)


# ----------------------------------------------------------------------
# The PR-4 regression reproductions (the analyzer's raison d'etre)
# ----------------------------------------------------------------------
class TestPR4ParserBug:
    FIXTURE = "pr4_parser_setcomp.py"

    def test_fires_ra001_on_both_iteration_sites(self, run_pass,
                                                 expected_lines):
        findings = run_pass(determinism, self.FIXTURE)
        assert lines_of(findings, "RA001") == \
            expected_lines(self.FIXTURE, "RA001")
        assert len(findings) == 2

    def test_cli_exits_1(self, fixture_path, in_repo_root, capsys):
        exit_code = main([fixture_path(self.FIXTURE),
                          "--library", "tests/analysis/fixtures",
                          "--exclude", "", "--no-baseline",
                          "--select", "RA0"])
        assert exit_code == 1
        out = capsys.readouterr().out
        assert "RA001" in out
        for line in expected_marker_lines(fixture_path(self.FIXTURE)):
            assert f":{line}: RA001" in out


class TestPR4ForceBug:
    FIXTURE = "pr4_force_hyperedges.py"

    def test_fires_ra001_on_hyperedges_and_float_sum(self, run_pass,
                                                     expected_lines):
        findings = run_pass(determinism, self.FIXTURE)
        assert lines_of(findings, "RA001") == \
            expected_lines(self.FIXTURE, "RA001")
        assert len(findings) == 3

    def test_cli_exits_1(self, fixture_path, in_repo_root, capsys):
        exit_code = main([fixture_path(self.FIXTURE),
                          "--library", "tests/analysis/fixtures",
                          "--exclude", "", "--no-baseline",
                          "--select", "RA0"])
        assert exit_code == 1
        assert "RA001" in capsys.readouterr().out


def expected_marker_lines(path):
    import re
    with open(path, encoding="utf-8") as handle:
        return [lineno for lineno, line in enumerate(handle, start=1)
                if re.search(r"#\s*must-fire:\s*RA001", line)]


# ----------------------------------------------------------------------
# The other firing shapes
# ----------------------------------------------------------------------
class TestOtherFiringShapes:
    FIXTURE = "det_more_fire.py"

    def test_every_marked_line_fires_exactly(self, run_pass,
                                             expected_lines):
        findings = run_pass(determinism, self.FIXTURE)
        for rule in ("RA001", "RA002", "RA003"):
            assert lines_of(findings, rule) == \
                expected_lines(self.FIXTURE, rule), rule

    def test_messages_name_the_origin(self, run_pass):
        findings = run_pass(determinism, self.FIXTURE)
        joined = "\n".join(finding.message for finding in findings)
        assert "set-valued variable 'unstable'" in joined
        assert "random.choice" in joined
        assert "hash()" in joined


# ----------------------------------------------------------------------
# Non-firing: laundering and order-insensitive consumption
# ----------------------------------------------------------------------
def test_clean_fixture_reports_nothing(run_pass):
    assert run_pass(determinism, "det_clean.py") == []


def test_rules_scope_to_library_code(run_pass, fixture_config):
    """Outside the configured library prefixes the determinism rules
    stay silent (tests may build sets freely)."""
    config = fixture_config(library_prefixes=("src/",))
    assert run_pass(determinism, "pr4_parser_setcomp.py",
                    config=config) == []
