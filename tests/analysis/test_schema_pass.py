"""Schema-contract pass (RA101-RA104): round-trip pairing, field
coverage, strip-list liveness, fingerprint schema versioning."""

from tools.analysis import schema


def by_rule(findings, rule):
    return [finding for finding in findings if finding.rule == rule]


class TestFiring:
    FIXTURE = "schema_fire.py"

    def test_marked_lines_fire(self, run_pass, expected_lines):
        findings = run_pass(schema, self.FIXTURE)
        for rule in ("RA101", "RA102", "RA103", "RA104"):
            assert [f.line for f in by_rule(findings, rule)] == \
                expected_lines(self.FIXTURE, rule), rule

    def test_ra101_names_the_missing_direction(self, run_pass):
        finding, = by_rule(run_pass(schema, self.FIXTURE), "RA101")
        assert "OneWay" in finding.message
        assert "from_dict" in finding.message

    def test_ra102_names_the_dropped_field(self, run_pass):
        findings = by_rule(run_pass(schema, self.FIXTURE), "RA102")
        assert len(findings) == 2  # to_dict and from_dict both drop it
        assert all("'dropped'" in f.message for f in findings)

    def test_ra103_only_flags_the_stale_entry(self, run_pass):
        finding, = by_rule(run_pass(schema, self.FIXTURE), "RA103")
        assert "no_such_field_anywhere" in finding.message
        assert "'kept'" not in finding.message


def test_clean_fixture_reports_nothing(run_pass):
    assert run_pass(schema, "schema_clean.py") == []


def test_strip_list_sees_fields_across_files(run_pass):
    """RA103 resolves strip-list entries against every analyzed file,
    not just the defining one: schema_fire's 'kept' lives in the same
    project, schema_clean's strip list resolves against its own."""
    findings = run_pass(schema, "schema_fire.py", "schema_clean.py")
    stale = [f for f in findings if f.rule == "RA103"]
    assert len(stale) == 1
    assert "no_such_field_anywhere" in stale[0].message
