"""Observability-hygiene pass (RA501-RA502): literal span names only,
no trace/metric emission inside fingerprint or stable-view functions."""

from tools.analysis import obspass


class TestFiring:
    FIXTURE = "obs_fire.py"

    def test_marked_lines_fire(self, run_pass, expected_lines):
        findings = run_pass(obspass, self.FIXTURE)
        for rule in ("RA501", "RA502"):
            assert sorted(f.line for f in findings
                          if f.rule == rule) == \
                expected_lines(self.FIXTURE, rule), rule

    def test_dynamic_name_message_names_the_fix(self, run_pass):
        findings = run_pass(obspass, self.FIXTURE)
        message = next(f.message for f in findings if f.rule == "RA501")
        assert "keyword attributes" in message

    def test_fingerprint_message_states_the_contract(self, run_pass):
        findings = run_pass(obspass, self.FIXTURE)
        message = next(f.message for f in findings if f.rule == "RA502")
        assert "fingerprint" in message


def test_literal_instrumentation_is_clean(run_pass):
    assert run_pass(obspass, "obs_clean.py") == []


def test_obs_substrate_is_exempt_from_ra501(run_pass):
    assert run_pass(obspass, "repro/obs/substrate.py") == []


def test_rules_scope_to_library_code(run_pass, fixture_config):
    config = fixture_config(library_prefixes=("src/",))
    assert run_pass(obspass, "obs_fire.py", config=config) == []


def test_pass_is_wired_into_the_driver():
    from tools.analysis import cli
    from tools.analysis.core import RULES

    assert obspass in cli.PASSES
    assert "RA501" in RULES and "RA502" in RULES
