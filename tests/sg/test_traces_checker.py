"""Tests for trace utilities and the explicit checker facade."""


from repro.report import ImplementabilityClass
from repro.sg import ExplicitChecker, build_state_graph
from repro.sg.traces import (
    bounded_io_equivalent,
    bounded_trace_equivalent,
    project,
    project_traces,
    traces_up_to,
    unbalanced_set,
)
from repro.stg.generators import (
    csc_resolved_example,
    csc_violation_example,
    fake_conflict_d1,
    fake_conflict_d2,
    handshake,
    inconsistent_example,
    irreducible_csc_example,
    master_read,
    muller_pipeline,
    mutex_arbitration_places,
    mutex_element,
    output_disabled_by_input,
)


class TestTraces:
    def test_traces_up_to_depth(self):
        stg = handshake()
        graph = build_state_graph(stg).graph
        traces = traces_up_to(graph, stg, 2)
        assert () in traces
        assert ("r+",) in traces
        assert ("r+", "a+") in traces
        assert all(len(t) <= 2 for t in traces)

    def test_traces_generic_vs_indexed(self):
        stg = csc_violation_example()
        graph = build_state_graph(stg).graph
        generic = traces_up_to(graph, stg, 6, generic=True)
        indexed = traces_up_to(graph, stg, 6, generic=False)
        assert any("a+" in trace for trace in generic)
        assert any("a+/2" in trace for trace in indexed)

    def test_projection(self):
        assert project(("a+", "b-", "a-"), ["a"]) == ("a+", "a-")
        assert project(("a+", "b-"), ["c"]) == ()

    def test_project_traces(self):
        traces = {("a+", "b+"), ("b+", "a+")}
        assert project_traces(traces, ["a"]) == {("a+",)}

    def test_unbalanced_set(self):
        assert unbalanced_set(("a+", "b+", "a-")) == frozenset({"b"})
        assert unbalanced_set(("a+", "a-")) == frozenset()
        assert unbalanced_set(()) == frozenset()

    def test_d1_d2_trace_equivalent(self):
        d1, d2 = fake_conflict_d1(), fake_conflict_d2()
        g1 = build_state_graph(d1).graph
        g2 = build_state_graph(d2).graph
        assert bounded_trace_equivalent(g1, d1, g2, d2,
                                        ["a", "b", "c"], depth=6)

    def test_io_equivalence_requires_same_interface(self):
        d1 = fake_conflict_d1()
        hs = handshake()
        g1 = build_state_graph(d1).graph
        g2 = build_state_graph(hs).graph
        assert not bounded_io_equivalent(g1, d1, g2, hs, depth=4)

    def test_io_equivalence_of_identical_specs(self):
        a, b = handshake(), handshake()
        ga = build_state_graph(a).graph
        gb = build_state_graph(b).graph
        assert bounded_io_equivalent(ga, a, gb, b, depth=8)

    def test_trace_inequivalence_detected(self):
        base = csc_violation_example()
        resolved = csc_resolved_example()
        gb = build_state_graph(base).graph
        gr = build_state_graph(resolved).graph
        # Projected on the common I/O signals the two are equivalent ...
        assert bounded_trace_equivalent(gb, base, gr, resolved,
                                        ["a", "b", "c"], depth=8)
        # ... but on all signals (including the inserted x) they are not.
        assert not bounded_trace_equivalent(gb, base, gr, resolved,
                                            ["a", "b", "c", "x"], depth=8)


class TestExplicitChecker:
    def test_handshake_is_gate_implementable(self):
        report = ExplicitChecker(handshake()).check()
        assert report.bounded and report.consistent
        assert report.output_persistent and report.csc
        assert report.classification is ImplementabilityClass.GATE
        assert report.gate_implementable

    def test_muller_pipeline_gate_implementable(self):
        report = ExplicitChecker(muller_pipeline(3)).check()
        assert report.classification is ImplementabilityClass.GATE
        assert report.num_states == 16

    def test_master_read_gate_implementable(self):
        report = ExplicitChecker(master_read(2)).check()
        assert report.classification is ImplementabilityClass.GATE

    def test_inconsistent_example_not_implementable(self):
        report = ExplicitChecker(inconsistent_example()).check()
        assert report.consistent is False
        assert report.classification is ImplementabilityClass.NOT_IMPLEMENTABLE

    def test_output_disabled_by_input_not_implementable(self):
        report = ExplicitChecker(output_disabled_by_input()).check()
        assert report.output_persistent is False
        assert report.classification is ImplementabilityClass.NOT_IMPLEMENTABLE

    def test_csc_violation_is_io_implementable(self):
        report = ExplicitChecker(csc_violation_example()).check()
        assert report.csc is False
        assert report.csc_reducible is True
        assert report.classification is ImplementabilityClass.IO
        assert report.io_implementable and not report.gate_implementable

    def test_irreducible_csc_is_only_si_implementable(self):
        report = ExplicitChecker(irreducible_csc_example()).check()
        assert report.csc is False
        assert report.csc_reducible is False
        assert report.classification is ImplementabilityClass.SI

    def test_mutex_with_arbitration_is_gate_implementable(self):
        stg = mutex_element()
        report = ExplicitChecker(
            stg, arbitration_places=mutex_arbitration_places(stg)).check()
        assert report.output_persistent
        assert report.classification is ImplementabilityClass.GATE

    def test_mutex_without_arbitration_fails_persistency(self):
        report = ExplicitChecker(mutex_element()).check()
        assert report.output_persistent is False

    def test_report_contains_timings_and_summary(self):
        report = ExplicitChecker(handshake()).check()
        assert set(report.timings) == {"T+C", "NI-p", "CSC"}
        text = report.summary()
        assert "handshake" in text
        assert "classification" in text
        assert "gate-implementable" in text

    def test_report_as_dict(self):
        report = ExplicitChecker(handshake()).check()
        data = report.as_dict()
        assert data["states"] == 4
        assert data["method"] == "explicit"
        assert data["csc"] is True

    def test_fake_conflict_d1_rejected_by_fake_freedom(self):
        report = ExplicitChecker(fake_conflict_d1()).check()
        assert report.fake_free is False
        # Signal-level persistency still holds (Figure 3's point).
        assert report.output_persistent is True
