"""Tests for State, StateGraph and the full-state-graph builder."""

import pytest

from repro.petri import Marking
from repro.sg import State, build_state_graph, infer_initial_values
from repro.stg import STG, STGError, SignalKind
from repro.stg.generators import (
    handshake,
    inconsistent_example,
    mutex_element,
    muller_pipeline,
    parallel_handshakes,
)


class TestState:
    def test_make_and_value_of(self):
        state = State.make(Marking({"p": 1}), {"a": True, "b": False})
        assert state.value_of("a")
        assert not state.value_of("b")
        assert not state.value_of("never_mentioned")

    def test_code_vector_and_string(self):
        state = State.make(Marking(), {"a": True, "b": False, "c": True})
        assert state.code_vector(["a", "b", "c"]) == (1, 0, 1)
        assert state.code_string(["c", "b", "a"]) == "101"

    def test_with_signal(self):
        state = State.make(Marking(), {"a": False})
        high = state.with_signal("a", True)
        assert high.value_of("a")
        assert not state.value_of("a")

    def test_equality_includes_marking(self):
        s1 = State.make(Marking({"p": 1}), {"a": True})
        s2 = State.make(Marking({"q": 1}), {"a": True})
        assert s1 != s2
        assert s1 == State.make(Marking({"p": 1}), {"a": True})


class TestBuilder:
    def test_handshake_has_four_states(self):
        result = build_state_graph(handshake())
        assert result.graph.num_states == 4
        assert result.consistent
        assert not result.truncated

    def test_codes_of_handshake_cycle(self):
        stg = handshake()
        result = build_state_graph(stg)
        codes = {state.code_string(["r", "a"]) for state in result.graph.states}
        assert codes == {"00", "10", "11", "01"}

    def test_missing_initial_values_rejected(self):
        stg = STG("incomplete")
        stg.add_signal("a", SignalKind.OUTPUT)
        stg.connect("a+", "a-")
        stg.connect("a-", "a+", tokens=1)
        with pytest.raises(STGError):
            build_state_graph(stg)

    def test_initial_values_override(self):
        stg = STG("override")
        stg.add_signal("a", SignalKind.OUTPUT)
        stg.connect("a-", "a+")
        stg.connect("a+", "a-", tokens=1)
        result = build_state_graph(stg, initial_values={"a": True})
        assert result.graph.initial.value_of("a")

    def test_inconsistent_example_records_violation(self):
        result = build_state_graph(inconsistent_example())
        assert not result.consistent
        assert any(v.signal == "b" for v in result.consistency_violations)

    def test_truncation_flag(self):
        result = build_state_graph(muller_pipeline(4), max_states=5)
        assert result.truncated

    def test_mutex_full_state_graph_size(self):
        # Each user is in one of 4 handshake phases and at most one user may
        # hold the mutual-exclusion token: 4 + 4 + 4 = 12 reachable states.
        result = build_state_graph(mutex_element())
        assert result.graph.num_states == 12

    def test_enabled_signals_helpers(self):
        stg = mutex_element()
        result = build_state_graph(stg)
        initial = result.graph.initial
        assert result.graph.enabled_signals(initial) == {"r1", "r2"}
        assert result.graph.enabled_noninput_signals(initial) == frozenset()

    def test_states_by_code_and_distinct_codes(self):
        stg = handshake()
        graph = build_state_graph(stg).graph
        assert graph.distinct_codes() == 4
        assert all(len(group) == 1 for group in graph.states_by_code().values())

    def test_parallel_handshake_state_count(self):
        graph = build_state_graph(parallel_handshakes(2)).graph
        assert graph.num_states == 16
        assert graph.deadlocks() == []


class TestInferInitialValues:
    def test_infer_handshake_without_declared_values(self):
        stg = handshake()
        stg._initial_values.clear()  # simulate a spec without declarations
        values = infer_initial_values(stg)
        assert values == {"r": False, "a": False}

    def test_infer_respects_declared_values(self):
        stg = handshake()
        values = infer_initial_values(stg)
        assert values == stg.initial_values

    def test_infer_high_initial_value(self):
        # A signal that must start at 1: its first transition is falling.
        stg = STG("starts_high")
        stg.add_signal("x", SignalKind.OUTPUT)
        stg.connect("x-", "x+")
        stg.connect("x+", "x-", tokens=1)
        values = infer_initial_values(stg)
        assert values["x"] is True

    def test_infer_defaults_unused_signal_to_zero(self):
        stg = handshake()
        stg._initial_values.clear()
        stg.add_signal("spare", SignalKind.INTERNAL)
        values = infer_initial_values(stg)
        assert values["spare"] is False

    def test_inferred_values_give_consistent_graph(self):
        stg = mutex_element()
        stg._initial_values.clear()
        values = infer_initial_values(stg)
        result = build_state_graph(stg, initial_values=values)
        assert result.consistent

    def test_infer_deep_first_enabling(self):
        # Signal "late" only changes after two other events; the parity
        # computation must still find that it starts at 0.
        stg = STG("late")
        stg.add_signal("a", SignalKind.INPUT)
        stg.add_signal("late", SignalKind.OUTPUT)
        stg.connect("a+", "late+")
        stg.connect("late+", "a-")
        stg.connect("a-", "late-")
        stg.connect("late-", "a+", tokens=1)
        stg._initial_values.clear()
        values = infer_initial_values(stg)
        assert values == {"a": False, "late": False}
