"""Tests for the explicit property checks: consistency, persistency, CSC,
reducibility and fake conflicts, exercised on the paper's examples."""

import pytest

from repro.sg import build_state_graph
from repro.sg.consistency import check_consistency
from repro.sg.csc import check_csc, check_csc_by_regions, csc_conflicts_by_regions
from repro.sg.fake_conflicts import classify_conflicts
from repro.sg.persistency import check_signal_persistency
from repro.sg.reducibility import (
    check_commutativity,
    check_complementary_input_sequences,
    check_determinism,
    check_reducibility,
)
from repro.sg.regions import compute_all_regions, compute_regions
from repro.stg.generators import (
    asymmetric_fake_conflict_example,
    csc_resolved_example,
    csc_violation_example,
    fake_conflict_d1,
    fake_conflict_d2,
    handshake,
    inconsistent_example,
    irreducible_csc_example,
    master_read,
    muller_pipeline,
    mutex_arbitration_places,
    mutex_element,
    output_disabled_by_input,
)


def graph_of(stg):
    return build_state_graph(stg).graph


class TestConsistency:
    def test_handshake_consistent(self):
        stg = handshake()
        assert check_consistency(graph_of(stg), stg).consistent

    def test_inconsistent_example_detected(self):
        stg = inconsistent_example()
        result = check_consistency(graph_of(stg), stg)
        assert not result.consistent
        assert "b" in result.violating_signals()

    @pytest.mark.parametrize("factory", [
        mutex_element, csc_violation_example, irreducible_csc_example,
        lambda: muller_pipeline(3), lambda: master_read(2),
    ], ids=["mutex", "csc_viol", "irreducible", "pipeline3", "master_read2"])
    def test_other_examples_consistent(self, factory):
        stg = factory()
        assert check_consistency(graph_of(stg), stg).consistent


class TestPersistency:
    def test_handshake_persistent(self):
        stg = handshake()
        assert check_signal_persistency(graph_of(stg), stg).persistent

    def test_marked_graphs_persistent(self):
        for stg in (muller_pipeline(3), master_read(2)):
            assert check_signal_persistency(graph_of(stg), stg).persistent

    def test_output_disabled_by_input_detected(self):
        stg = output_disabled_by_input()
        result = check_signal_persistency(graph_of(stg), stg)
        assert not result.persistent
        assert ("a", "b") in result.violating_signal_pairs()

    def test_input_choice_is_allowed(self):
        stg = irreducible_csc_example()
        assert check_signal_persistency(graph_of(stg), stg).persistent

    def test_mutex_violates_persistency_without_arbitration(self):
        stg = mutex_element()
        result = check_signal_persistency(graph_of(stg), stg)
        assert not result.persistent
        assert ("g1", "g2") in result.violating_signal_pairs()

    def test_mutex_persistent_with_declared_arbitration(self):
        stg = mutex_element()
        result = check_signal_persistency(
            graph_of(stg), stg,
            arbitration_places=mutex_arbitration_places(stg))
        assert result.persistent
        assert result.arbitration_skips > 0

    def test_fake_conflict_d1_signal_persistent(self):
        # Transition-level conflicts exist but no signal is ever disabled.
        stg = fake_conflict_d1()
        assert check_signal_persistency(graph_of(stg), stg).persistent

    def test_asymmetric_fake_conflict_not_persistent(self):
        stg = asymmetric_fake_conflict_example()
        result = check_signal_persistency(graph_of(stg), stg)
        assert not result.persistent


class TestRegions:
    def test_handshake_regions_partition(self):
        stg = handshake()
        graph = graph_of(stg)
        regions = compute_regions(graph, stg, "a")
        # 4 states: one in each region of signal a.
        assert len(regions.er_plus) == 1
        assert len(regions.er_minus) == 1
        assert len(regions.qr_plus) == 1
        assert len(regions.qr_minus) == 1

    def test_regions_cover_all_states(self):
        stg = mutex_element()
        graph = graph_of(stg)
        for signal, regions in compute_all_regions(graph, stg).items():
            covered = (set(regions.er_plus) | set(regions.er_minus)
                       | set(regions.qr_plus) | set(regions.qr_minus))
            assert covered == set(graph.states)

    def test_excitation_and_quiescent_disjoint_per_polarity(self):
        stg = muller_pipeline(2)
        graph = graph_of(stg)
        for signal in stg.signals:
            regions = compute_regions(graph, stg, signal)
            assert not (set(regions.er_plus) & set(regions.qr_minus))
            assert not (set(regions.er_minus) & set(regions.qr_plus))


class TestCSC:
    @pytest.mark.parametrize("factory, expect_csc", [
        (handshake, True),
        (mutex_element, True),
        (csc_violation_example, False),
        (csc_resolved_example, True),
        (irreducible_csc_example, False),
        (lambda: muller_pipeline(3), True),
        (lambda: master_read(2), True),
    ], ids=["handshake", "mutex", "csc_viol", "csc_resolved", "irreducible",
            "pipeline3", "master_read2"])
    def test_csc_verdicts(self, factory, expect_csc):
        stg = factory()
        result = check_csc(graph_of(stg), stg)
        assert result.csc is expect_csc

    def test_csc_violation_identifies_signals(self):
        stg = csc_violation_example()
        result = check_csc(graph_of(stg), stg)
        assert set(result.conflicting_signals()) == {"b", "c"}

    def test_usc_stricter_than_csc(self):
        # The mutex element: markings determine codes uniquely here, so both
        # hold; the resolved CSC example also satisfies USC.
        stg = csc_resolved_example()
        result = check_csc(graph_of(stg), stg)
        assert result.usc and result.csc

    def test_region_formulation_agrees_with_pairwise(self):
        for factory in (handshake, mutex_element, csc_violation_example,
                        csc_resolved_example, irreducible_csc_example):
            stg = factory()
            graph = graph_of(stg)
            pairwise = check_csc(graph, stg)
            by_regions = check_csc_by_regions(graph, stg)
            region_csc = all(not codes for codes in by_regions.values())
            assert region_csc == pairwise.csc, stg.name

    def test_region_conflict_codes_for_violation(self):
        stg = csc_violation_example()
        graph = graph_of(stg)
        codes_b = csc_conflicts_by_regions(graph, stg, "b")
        # Code (a=1, b=0, c=0) is both an excitation state of b+ and a
        # quiescent state of b.
        assert codes_b == {"100"}


class TestReducibility:
    def test_deterministic_examples(self):
        for factory in (handshake, mutex_element, csc_violation_example):
            stg = factory()
            assert check_determinism(graph_of(stg), stg).deterministic

    def test_commutative_examples(self):
        for factory in (handshake, mutex_element, fake_conflict_d2,
                        lambda: muller_pipeline(3)):
            stg = factory()
            assert check_commutativity(graph_of(stg), stg).commutative

    def test_fake_conflict_d1_is_commutative(self):
        # D1's diamonds close through different transition occurrences.
        stg = fake_conflict_d1()
        assert check_commutativity(graph_of(stg), stg).commutative

    def test_csc_violation_is_reducible(self):
        stg = csc_violation_example()
        result = check_reducibility(graph_of(stg), stg)
        assert result.reducible

    def test_irreducible_example_detected(self):
        stg = irreducible_csc_example()
        result = check_reducibility(graph_of(stg), stg)
        assert not result.reducible
        assert result.offending_signals == ["o"]

    def test_complementary_check_ignores_csc_clean_signals(self):
        stg = handshake()
        result = check_complementary_input_sequences(graph_of(stg), stg)
        assert result.free


class TestFakeConflicts:
    def test_d1_has_symmetric_fake_conflict(self):
        stg = fake_conflict_d1()
        result = classify_conflicts(stg)
        assert len(result.symmetric_fake) == 1
        assert not result.fake_free(stg)

    def test_d2_has_no_conflicts(self):
        stg = fake_conflict_d2()
        result = classify_conflicts(stg)
        assert result.classifications == []
        assert result.fake_free(stg)

    def test_asymmetric_fake_conflict_detected(self):
        stg = asymmetric_fake_conflict_example()
        result = classify_conflicts(stg)
        assert len(result.asymmetric_fake) == 1
        assert not result.fake_free(stg)

    def test_input_order_choice_is_symmetric_fake(self):
        # In the irreducible example each branch fires both inputs, so the
        # conflicting entry transitions never disable the other *signal*:
        # the conflict is symmetric fake, and the specification is rejected
        # by the fake-freedom well-formedness check (Section 3.5) -- which
        # is consistent with it not being I/O-implementable.
        stg = irreducible_csc_example()
        result = classify_conflicts(stg)
        assert len(result.classifications) == 1
        assert result.classifications[0].is_fake_symmetric
        assert not result.fake_free(stg)

    def test_mutex_grant_conflict_is_real(self):
        stg = mutex_element()
        result = classify_conflicts(stg)
        real_pairs = {(c.first, c.second) for c in result.classifications
                      if c.is_real}
        assert ("g1+", "g2+") in real_pairs

    def test_marked_graph_has_no_conflicts(self):
        stg = muller_pipeline(3)
        assert classify_conflicts(stg).classifications == []
