"""Tests of the benchmark corpus: registry metadata, loader, materialisation.

The parametrized roundtrip test (parse -> write -> parse, graphs equal)
covers every registered entry, and the sync test pins the checked-in
``tests/data`` fixtures to the registry so the historical
missing-fixture bug cannot recur.
"""

import os

import pytest

from repro import corpus
from repro.stg import parse_g, to_g_string
from repro.stg.parser import SpecificationNotFound, read_g_file

DATA_DIR = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "data")

#: The integration fixtures that must exist as checked-in files.
CHECKED_IN = ["sbuf_send_ctl", "choice_controller", "broken_double_rise"]


class TestRegistry:
    def test_names_nonempty_and_ordered(self):
        names = corpus.names()
        assert len(names) >= 12
        assert names[0] == "sbuf_send_ctl"
        assert len(set(names)) == len(names)

    def test_required_entries_present(self):
        required = set(CHECKED_IN) | {
            "sbuf_read_ctl", "vme_read", "vme_read_resolved",
            "mutex_element", "master_read_2", "muller_pipeline_3",
            "inconsistent", "csc_violation", "irreducible_csc"}
        assert required <= set(corpus.names())

    def test_unknown_entry_error_names_alternatives(self):
        with pytest.raises(corpus.CorpusError, match="vme_read"):
            corpus.entry("no_such_benchmark")

    @pytest.mark.parametrize("name", corpus.names())
    def test_metadata_matches_parsed_interface(self, name):
        entry = corpus.entry(name)
        stg = corpus.load(name)
        assert stg.name == name
        assert len(stg.inputs) == entry.num_inputs
        assert len(stg.outputs) == entry.num_outputs
        assert len(stg.internals) == entry.num_internals
        assert stg.has_complete_initial_values()
        for place in entry.arbitration_places:
            assert stg.net.has_place(place)

    @pytest.mark.parametrize("name", corpus.names())
    def test_expected_keys_are_valid(self, name):
        expected = corpus.entry(name).expected
        assert expected, "every entry must pin at least one verdict"
        assert set(expected) <= set(corpus.REPORT_FIELDS)


class TestRoundtrip:
    @pytest.mark.parametrize("name", corpus.names())
    def test_parse_write_parse_is_identity(self, name):
        first = corpus.load(name)
        second = parse_g(to_g_string(first))
        assert corpus.structurally_equal(first, second)

    @pytest.mark.parametrize("name", corpus.names())
    def test_canonical_text_parses_through_file_reader(self, name, tmp_path):
        path = corpus.write_g(name, str(tmp_path / f"{name}.g"))
        stg = read_g_file(path)
        assert corpus.structurally_equal(stg, corpus.load(name))


class TestMaterialisation:
    def test_write_all_selection(self, tmp_path):
        paths = corpus.write_all(str(tmp_path), ["handshake", "vme_read"])
        assert [os.path.basename(p) for p in paths] == \
            ["handshake.g", "vme_read.g"]
        assert all(os.path.exists(p) for p in paths)

    def test_ensure_g_file_creates_missing(self, tmp_path):
        path = corpus.ensure_g_file("handshake", str(tmp_path))
        assert os.path.exists(path)
        with open(path, encoding="utf-8") as handle:
            assert handle.read() == corpus.g_text("handshake")

    def test_ensure_g_file_keeps_existing(self, tmp_path):
        path = tmp_path / "handshake.g"
        path.write_text("# sentinel\n")
        assert corpus.ensure_g_file("handshake", str(tmp_path)) == str(path)
        assert path.read_text() == "# sentinel\n"

    @pytest.mark.parametrize("name", CHECKED_IN)
    def test_checked_in_fixtures_stay_in_sync(self, name):
        path = os.path.join(DATA_DIR, f"{name}.g")
        assert os.path.exists(path), (
            f"{path} is missing; regenerate it with "
            f"repro.corpus.write_g({name!r}, {path!r})")
        with open(path, encoding="utf-8") as handle:
            on_disk = handle.read()
        assert on_disk == corpus.g_text(name), (
            f"{path} drifted from the corpus registry; regenerate it with "
            f"repro.corpus.write_g({name!r}, {path!r})")


class TestParserErrorHandling:
    def test_missing_file_error_names_corpus_entries(self, tmp_path):
        missing = str(tmp_path / "nope.g")
        with pytest.raises(SpecificationNotFound) as excinfo:
            read_g_file(missing)
        message = str(excinfo.value)
        assert "nope.g" in message
        assert "sbuf_send_ctl" in message
        assert "write_g" in message

    def test_error_is_still_a_file_not_found_error(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_g_file(str(tmp_path / "nope.g"))
