"""Cross-engine validation of the corpus metadata.

Every entry is checked by both the symbolic (BDD) and the explicit (state
graph) engine; both must reproduce the registry's expected verdicts.  The
engines only need to agree on the *pinned* keys: e.g. on an inconsistent
specification the symbolic traversal prunes states without a consistent
binary code, so the raw state counts legitimately differ and the registry
does not pin them.
"""

import pytest

from repro import corpus
from repro.core import VerificationPipeline
from repro.sg import ExplicitChecker


def _symbolic_report(entry):
    pipeline = VerificationPipeline(
        corpus.load(entry.name),
        arbitration_places=entry.arbitration_places)
    return pipeline.run(include_liveness=True)


def _explicit_report(entry):
    return ExplicitChecker(
        corpus.load(entry.name),
        arbitration_places=entry.arbitration_places).check()


@pytest.mark.parametrize("name", corpus.names())
def test_symbolic_engine_matches_expected_metadata(name):
    entry = corpus.entry(name)
    assert entry.mismatches(_symbolic_report(entry)) == []


@pytest.mark.parametrize("name", corpus.names())
def test_explicit_engine_matches_expected_metadata(name):
    entry = corpus.entry(name)
    assert entry.mismatches(_explicit_report(entry)) == []


@pytest.mark.parametrize("name", corpus.names())
def test_engines_agree_on_consistent_entries(name):
    entry = corpus.entry(name)
    symbolic = _symbolic_report(entry)
    explicit = _explicit_report(entry)
    assert symbolic.consistent == explicit.consistent
    if not symbolic.consistent:
        return  # state spaces differ by construction; nothing more to compare
    assert symbolic.num_states == explicit.num_states
    assert symbolic.output_persistent == explicit.output_persistent
    assert symbolic.csc == explicit.csc
    assert symbolic.usc == explicit.usc
    assert symbolic.classification == explicit.classification
