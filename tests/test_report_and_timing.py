"""Unit tests for the shared report type and the timing utilities."""

import time

import pytest

from repro.report import (
    ImplementabilityClass,
    ImplementabilityReport,
    PropertyVerdict,
)
from repro.utils.timing import PhaseTimer, Stopwatch


def make_report(**overrides):
    base = dict(stg_name="spec", method="symbolic", bounded=True,
                consistent=True, output_persistent=True, csc=True, usc=True,
                deterministic=True, commutative=True, complementary_free=True)
    base.update(overrides)
    return ImplementabilityReport(**base)


class TestClassification:
    def test_gate_implementable(self):
        report = make_report()
        assert report.classification is ImplementabilityClass.GATE
        assert report.gate_implementable and report.io_implementable

    def test_io_implementable_when_csc_fails_but_reducible(self):
        report = make_report(csc=False)
        assert report.csc_reducible is True
        assert report.classification is ImplementabilityClass.IO
        assert report.io_implementable and not report.gate_implementable

    def test_si_only_when_irreducible(self):
        report = make_report(csc=False, complementary_free=False)
        assert report.classification is ImplementabilityClass.SI
        assert not report.io_implementable

    def test_not_implementable_on_basic_failures(self):
        for field in ("bounded", "consistent", "output_persistent"):
            report = make_report(**{field: False})
            assert report.classification is \
                ImplementabilityClass.NOT_IMPLEMENTABLE, field

    def test_unknown_commutativity_blocks_io_classification(self):
        report = make_report(csc=False, commutative=None)
        assert report.csc_reducible is None
        assert report.classification is ImplementabilityClass.SI

    def test_classification_strings(self):
        assert "gate" in str(ImplementabilityClass.GATE)
        assert "I/O" in str(ImplementabilityClass.IO)
        assert str(ImplementabilityClass.PARTIAL).startswith("partial")

    def test_partial_when_basics_unchecked(self):
        report = make_report(bounded=None, consistent=None,
                             output_persistent=None)
        assert report.classification is ImplementabilityClass.PARTIAL
        assert not report.io_implementable

    def test_partial_when_csc_unchecked(self):
        report = make_report(csc=None, usc=None)
        assert report.classification is ImplementabilityClass.PARTIAL

    def test_partial_when_reducibility_never_ran(self):
        report = make_report(csc=False, deterministic=None,
                             commutative=None, complementary_free=None)
        assert report.classification is ImplementabilityClass.PARTIAL

    def test_partial_round_trips_through_the_dict_schema(self):
        report = make_report(csc=None, usc=None)
        data = report.to_dict()
        # Rendered explicitly for --json consumers ...
        assert data["classification"] == str(ImplementabilityClass.PARTIAL)
        # ... and recomputed (not restored) on the way back, exactly.
        rebuilt = ImplementabilityReport.from_dict(data)
        assert rebuilt == report
        assert rebuilt.classification is ImplementabilityClass.PARTIAL
        assert rebuilt.to_dict() == data

    def test_partial_rendered_in_summary(self):
        report = make_report(csc=None, usc=None)
        assert "classification: partial" in report.summary()


class TestVerdictsAndRendering:
    def test_add_verdict_and_summary(self):
        report = make_report()
        report.add_verdict("some property", True)
        report.add_verdict("broken property", False, ["detail 1", "detail 2"])
        text = report.summary()
        assert "[OK ] some property" in text
        assert "[FAIL] broken property" in text
        assert "detail 1" in text

    def test_verdict_detail_truncation(self):
        verdict = PropertyVerdict("p", False, [f"d{i}" for i in range(10)])
        text = str(verdict)
        assert "d0" in text and "d9" not in text
        assert "7 more" in text

    def test_as_dict_round_trip_fields(self):
        report = make_report()
        report.timings = {"T+C": 0.5, "CSC": 0.25}
        data = report.as_dict()
        assert data["name"] == "spec"
        assert data["csc_reducible"] is True
        assert data["timings"] == {"T+C": 0.5, "CSC": 0.25}
        assert report.total_time == pytest.approx(0.75)

    def test_summary_includes_bdd_stats_only_when_present(self):
        without = make_report()
        assert "BDD nodes" not in without.summary()
        with_stats = make_report(bdd_peak_nodes=10, bdd_final_nodes=5,
                                 bdd_variables=7)
        assert "BDD nodes: peak 10, final 5" in with_stats.summary()


class TestStopwatch:
    def test_accumulates_time(self):
        watch = Stopwatch()
        with watch:
            time.sleep(0.01)
        first = watch.elapsed
        with watch:
            time.sleep(0.01)
        assert watch.elapsed > first >= 0.01

    def test_double_start_rejected(self):
        watch = Stopwatch()
        watch.start()
        with pytest.raises(RuntimeError):
            watch.start()
        watch.stop()

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()


class TestPhaseTimer:
    def test_phases_accumulate_separately(self):
        timer = PhaseTimer()
        with timer.phase("a"):
            time.sleep(0.01)
        with timer.phase("b"):
            time.sleep(0.01)
        with timer.phase("a"):
            time.sleep(0.01)
        assert timer.get("a") > timer.get("b") > 0
        assert timer.get("missing") == 0.0
        assert timer.total == pytest.approx(timer.get("a") + timer.get("b"))

    def test_as_dict_copy(self):
        timer = PhaseTimer()
        with timer.phase("x"):
            pass
        exported = timer.as_dict()
        exported["x"] = 123.0
        assert timer.get("x") != 123.0

    def test_phase_records_time_even_on_exception(self):
        timer = PhaseTimer()
        with pytest.raises(ValueError):
            with timer.phase("failing"):
                raise ValueError("boom")
        assert timer.get("failing") >= 0.0
        assert "failing" in timer.as_dict()
