"""End-to-end integration tests: .g file -> check -> synthesis -> netlist.

These tests exercise the complete tool flow on specification files stored
in ``tests/data`` (written in the classical ASTG format, including one
with explicit choice places and one deliberately broken file), i.e. the
way an external user would drive the library.

The files are checked in but owned by the benchmark corpus
(:mod:`repro.corpus`): :func:`data_file` materialises any missing file
from the registry, so deleting ``tests/data`` cannot break the suite, and
``tests/corpus`` asserts the checked-in copies stay in sync.
"""

import os

import pytest

from repro import corpus
from repro.cli import main as cli_main
from repro.core import ImplementabilityChecker
from repro.core.encoding import SymbolicEncoding
from repro.core.image import SymbolicImage
from repro.core.traversal import symbolic_traversal
from repro.report import ImplementabilityClass
from repro.sg import ExplicitChecker, build_state_graph
from repro.stg import read_g_file, to_g_string, parse_g
from repro.synthesis import (
    derive_next_state_functions,
    synthesize_complex_gates,
    verify_implementation,
)
from repro.synthesis.netlist import to_verilog

DATA_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "data")


def data_file(name: str) -> str:
    return corpus.ensure_g_file(os.path.splitext(name)[0], DATA_DIR)


class TestSendControllerFlow:
    """sbuf_send_ctl.g: a clean, gate-implementable controller."""

    def test_parse_and_interface(self):
        stg = read_g_file(data_file("sbuf_send_ctl.g"))
        assert sorted(stg.inputs) == ["done", "req"]
        assert sorted(stg.outputs) == ["ack", "latch"]
        assert stg.has_complete_initial_values()

    def test_full_check_both_engines(self):
        stg = read_g_file(data_file("sbuf_send_ctl.g"))
        symbolic = ImplementabilityChecker(stg).check()
        explicit = ExplicitChecker(stg).check()
        assert symbolic.classification is ImplementabilityClass.GATE
        assert explicit.classification is ImplementabilityClass.GATE
        assert symbolic.num_states == explicit.num_states == 8

    def test_synthesis_and_verification(self):
        stg = read_g_file(data_file("sbuf_send_ctl.g"))
        encoding = SymbolicEncoding(stg)
        image = SymbolicImage(encoding)
        reached, _ = symbolic_traversal(encoding, image=image)
        functions = derive_next_state_functions(encoding, reached, image.charfun)
        gates = synthesize_complex_gates(encoding, reached, image.charfun)
        graph = build_state_graph(stg).graph
        assert verify_implementation(encoding, graph, gates, functions).correct
        verilog = to_verilog(stg, gates)
        assert "module sbuf_send_ctl" in verilog
        assert "assign ack" in verilog and "assign latch" in verilog

    def test_roundtrip_through_writer(self):
        stg = read_g_file(data_file("sbuf_send_ctl.g"))
        recovered = parse_g(to_g_string(stg))
        assert build_state_graph(recovered).graph.num_states == 8

    def test_cli_on_file(self, capsys):
        assert cli_main([data_file("sbuf_send_ctl.g")]) == 0
        assert "gate-implementable" in capsys.readouterr().out


class TestChoiceControllerFlow:
    """choice_controller.g: environment choice, repeated codes but CSC holds."""

    def test_check(self):
        stg = read_g_file(data_file("choice_controller.g"))
        report = ImplementabilityChecker(stg).check()
        assert report.consistent and report.output_persistent
        assert report.csc is True
        assert report.usc is False       # two branches share the code 001
        assert report.classification is ImplementabilityClass.GATE

    def test_cross_validation(self):
        stg = read_g_file(data_file("choice_controller.g"))
        symbolic = ImplementabilityChecker(stg).check()
        explicit = ExplicitChecker(stg).check()
        assert symbolic.num_states == explicit.num_states
        assert symbolic.usc == explicit.usc
        assert symbolic.csc == explicit.csc

    def test_grant_logic_is_request_or(self):
        stg = read_g_file(data_file("choice_controller.g"))
        encoding = SymbolicEncoding(stg)
        image = SymbolicImage(encoding)
        reached, _ = symbolic_traversal(encoding, image=image)
        gates = synthesize_complex_gates(encoding, reached, image.charfun)
        reachable_codes = reached.exist(encoding.place_variables)
        expected = encoding.signal("r1") | encoding.signal("r2")
        assert (gates["g"].cover_function & reachable_codes) == \
            (expected & reachable_codes)


class TestBrokenSpecificationFlow:
    """broken_double_rise.g: the tool flow must reject it cleanly."""

    def test_check_reports_inconsistency(self):
        stg = read_g_file(data_file("broken_double_rise.g"))
        report = ImplementabilityChecker(stg).check()
        assert report.consistent is False
        assert report.classification is ImplementabilityClass.NOT_IMPLEMENTABLE

    def test_cli_exit_code(self, capsys):
        assert cli_main([data_file("broken_double_rise.g")]) == 1
        assert "not SI-implementable" in capsys.readouterr().out

    def test_synthesis_refuses(self):
        from repro.synthesis.functions import SynthesisError

        stg = read_g_file(data_file("broken_double_rise.g"))
        encoding = SymbolicEncoding(stg)
        image = SymbolicImage(encoding)
        reached, _ = symbolic_traversal(encoding, image=image)
        with pytest.raises(SynthesisError):
            derive_next_state_functions(encoding, reached, image.charfun)
