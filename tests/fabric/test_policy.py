"""RetryPolicy: spec parsing, deterministic backoff, verdict safety."""

import pytest

from repro.fabric.policy import (
    DEFAULT_RETRY_STATUSES,
    RetryPolicy,
    RetrySpecError,
    parse_retry_spec,
)


class TestSpecParsing:
    def test_full_spec_round_trips_every_field(self):
        policy = parse_retry_spec(
            "attempts=4,base=0.1,multiplier=3,max=1.5,jitter=0.25,seed=7")
        assert policy == RetryPolicy(max_attempts=4, base_delay=0.1,
                                     multiplier=3.0, max_delay=1.5,
                                     jitter=0.25, seed=7)

    def test_empty_spec_is_the_default_policy(self):
        assert parse_retry_spec("") == RetryPolicy()

    @pytest.mark.parametrize("spec", [
        "attempts", "bogus=1", "attempts=x", "base=-1", "attempts=0",
        "jitter=2", "multiplier=0.5"])
    def test_bad_specs_raise(self, spec):
        with pytest.raises(RetrySpecError):
            parse_retry_spec(spec)

    def test_policy_dict_round_trip(self):
        policy = RetryPolicy(max_attempts=5, jitter=0.1, seed=3)
        assert RetryPolicy.from_dict(policy.to_dict()) == policy


class TestRetryDecisions:
    def test_default_retryable_statuses_are_the_non_verdicts(self):
        policy = RetryPolicy()
        assert DEFAULT_RETRY_STATUSES == ("error", "timeout")
        assert policy.retryable("error")
        assert policy.retryable("timeout")
        assert not policy.retryable("ok")
        assert not policy.retryable("mismatch")

    def test_verdict_statuses_can_never_be_configured_retryable(self):
        with pytest.raises(RetrySpecError):
            RetryPolicy(retry_statuses=("error", "mismatch"))
        with pytest.raises(RetrySpecError):
            RetryPolicy(retry_statuses=("ok",))

    def test_attempt_budget_bounds_should_retry(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.should_retry("error", 1)
        assert policy.should_retry("error", 2)
        assert not policy.should_retry("error", 3)
        assert not policy.should_retry("ok", 1)

    def test_max_attempts_one_never_retries(self):
        assert not RetryPolicy(max_attempts=1).should_retry("error", 1)


class TestBackoff:
    def test_first_attempt_has_no_delay(self):
        assert RetryPolicy().delay_for(1, "key") == 0.0

    def test_jitterless_backoff_is_exponential_and_capped(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0,
                             max_delay=0.5, jitter=0.0)
        assert policy.delay_for(2) == pytest.approx(0.1)
        assert policy.delay_for(3) == pytest.approx(0.2)
        assert policy.delay_for(4) == pytest.approx(0.4)
        assert policy.delay_for(5) == pytest.approx(0.5)  # capped
        assert policy.delay_for(9) == pytest.approx(0.5)

    def test_jitter_is_deterministic_per_seed_key_attempt(self):
        policy = RetryPolicy(jitter=0.5, seed=11)
        assert policy.delay_for(2, "fp-a") == policy.delay_for(2, "fp-a")
        assert policy.delay_for(2, "fp-a") != policy.delay_for(2, "fp-b")
        assert policy.delay_for(2, "fp-a") != \
            RetryPolicy(jitter=0.5, seed=12).delay_for(2, "fp-a")

    def test_jitter_only_shrinks_the_delay_within_bounds(self):
        policy = RetryPolicy(base_delay=0.2, jitter=0.5)
        for key in ("a", "b", "c", "d", "e"):
            delay = policy.delay_for(2, key)
            assert 0.1 <= delay <= 0.2
