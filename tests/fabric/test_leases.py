"""LeaseStore: the claim/renew/release lifecycle, expiry-based work
stealing, journal replay and crash repair.  Every test drives time with
explicit ``now`` values -- nothing here sleeps."""

import json

import pytest

from repro.fabric.leases import LEASES_FILE, Lease, LeaseStore, \
    LeaseStoreWarning


@pytest.fixture
def store(tmp_path):
    return LeaseStore(str(tmp_path))


class TestLifecycle:
    def test_claim_grants_until_the_deadline(self, store):
        lease = store.claim("e::f1", "e", "w1", duration=10.0, now=100.0)
        assert lease is not None
        assert lease.deadline == 110.0
        assert store.holder_of("e::f1", now=105.0) == lease
        assert not store.claimable("e::f1", now=105.0)

    def test_valid_lease_blocks_a_second_claim(self, store):
        store.claim("e::f1", "e", "w1", duration=10.0, now=100.0)
        assert store.claim("e::f1", "e", "w2", duration=10.0,
                           now=105.0) is None
        assert store.reclaimed == 0

    def test_expired_lease_is_stolen_and_counted(self, store):
        first = store.claim("e::f1", "e", "w1", duration=10.0, now=100.0)
        stolen = store.claim("e::f1", "e", "w2", duration=10.0,
                             now=111.0)
        assert stolen is not None and stolen.holder == "w2"
        assert stolen.token != first.token
        assert store.reclaimed == 1

    def test_renew_extends_the_deadline(self, store):
        lease = store.claim("e::f1", "e", "w1", duration=10.0, now=100.0)
        renewed = store.renew(lease, duration=10.0, now=108.0)
        assert renewed.deadline == 118.0
        assert store.holder_of("e::f1", now=115.0) == renewed

    def test_renew_of_a_superseded_lease_fails(self, store):
        old = store.claim("e::f1", "e", "w1", duration=10.0, now=100.0)
        store.claim("e::f1", "e", "w2", duration=10.0, now=111.0)
        assert store.renew(old, duration=10.0, now=112.0) is None

    def test_renew_of_an_expired_lease_fails(self, store):
        lease = store.claim("e::f1", "e", "w1", duration=10.0, now=100.0)
        assert store.renew(lease, duration=10.0, now=111.0) is None

    def test_release_frees_the_entry(self, store):
        lease = store.claim("e::f1", "e", "w1", duration=10.0, now=100.0)
        assert store.release(lease, "ok", now=105.0)
        assert store.claimable("e::f1", now=105.0)
        assert len(store) == 0

    def test_stale_release_is_rejected(self, store):
        old = store.claim("e::f1", "e", "w1", duration=10.0, now=100.0)
        new = store.claim("e::f1", "e", "w2", duration=10.0, now=111.0)
        # w1 comes back from the dead: its token was superseded.
        assert not store.release(old, "ok", now=112.0)
        assert store.holder_of("e::f1", now=112.0) == new

    def test_expired_release_is_rejected_and_frees_the_entry(self, store):
        lease = store.claim("e::f1", "e", "w1", duration=10.0, now=100.0)
        assert not store.release(lease, "ok", now=111.0)
        # The dead lease is dropped, so the entry is immediately
        # claimable rather than waiting for the next expiry scan.
        assert store.claimable("e::f1", now=111.0)

    def test_expired_leases_listing(self, store):
        store.claim("a::f", "a", "w1", duration=10.0, now=100.0)
        store.claim("b::f", "b", "w1", duration=30.0, now=100.0)
        expired = store.expired_leases(now=120.0)
        assert [lease.key for lease in expired] == ["a::f"]
        assert len(store.active_leases()) == 2


class TestJournalReplay:
    def test_replay_reconstructs_the_active_table(self, store, tmp_path):
        kept = store.claim("a::f", "a", "w1", duration=10.0, now=100.0)
        done = store.claim("b::f", "b", "w1", duration=10.0, now=100.0)
        store.release(done, "ok", now=105.0)
        reloaded = LeaseStore(str(tmp_path))
        assert len(reloaded) == 1
        assert reloaded.active_leases()[0] == kept

    def test_replay_resumes_the_token_sequence(self, store, tmp_path):
        lease = store.claim("a::f", "a", "w1", duration=10.0, now=100.0)
        reloaded = LeaseStore(str(tmp_path))
        fresh = reloaded.claim("b::f", "b", "w2", duration=10.0,
                               now=100.0)
        assert fresh.token > lease.token

    def test_corrupt_trailing_line_is_skipped_with_a_warning(
            self, store, tmp_path):
        store.claim("a::f", "a", "w1", duration=10.0, now=100.0)
        with open(store.path, "a", encoding="utf-8") as handle:
            handle.write('{"key": "b::f", "name": "b", "hol')
        with pytest.warns(LeaseStoreWarning):
            reloaded = LeaseStore(str(tmp_path))
        assert reloaded.skipped_lines == 1
        assert len(reloaded) == 1

    def test_compact_repairs_the_journal(self, store, tmp_path):
        store.claim("a::f", "a", "w1", duration=10.0, now=100.0)
        done = store.claim("b::f", "b", "w1", duration=10.0, now=100.0)
        store.release(done, "ok", now=101.0)
        with open(store.path, "a", encoding="utf-8") as handle:
            handle.write("not json\n")
        with pytest.warns(LeaseStoreWarning):
            reloaded = LeaseStore(str(tmp_path))
        reloaded.compact()
        lines = [json.loads(line) for line in
                 open(tmp_path / LEASES_FILE, encoding="utf-8")]
        assert [line["key"] for line in lines] == ["a::f"]
        assert all(line["op"] == "claim" for line in lines)
        assert reloaded.skipped_lines == 0
        # And the compacted journal replays clean.
        assert len(LeaseStore(str(tmp_path))) == 1

    def test_lease_dict_round_trip(self):
        lease = Lease(key="a::f", name="a", holder="w1", token=3,
                      deadline=110.0)
        assert Lease.from_dict(lease.to_dict()) == lease
