"""FaultPlan: spec round-trips, deterministic decisions, torn writes."""

import json

import pytest

from repro.faults import (
    FAULT_KINDS,
    FaultPlan,
    FaultSpecError,
    parse_fault_spec,
    plan_from_config,
    torn_write,
)


class TestSpecParsing:
    def test_spec_round_trip_is_exact(self):
        plan = FaultPlan(seed=11, crash=0.25, hang=0.1, truncate=0.2,
                         stall=0.05)
        assert parse_fault_spec(plan.to_spec()) == plan

    def test_attempt_survives_the_spec_round_trip(self):
        plan = FaultPlan(seed=3, crash=0.5).for_attempt(2)
        assert parse_fault_spec(plan.to_spec()).attempt == 2

    @pytest.mark.parametrize("spec", [
        "crash", "crash=x", "crash=1.5", "bogus=0.1", "seed=x",
        "attempt=0"])
    def test_bad_specs_raise(self, spec):
        with pytest.raises(FaultSpecError):
            parse_fault_spec(spec)

    def test_dict_round_trip(self):
        plan = FaultPlan(seed=2, hang=0.3, attempt=4)
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_plan_from_config_reads_the_knob(self):
        assert plan_from_config({}) is None
        assert plan_from_config({"fault_plan": None}) is None
        plan = plan_from_config({"fault_plan": "crash=0.5,seed=9"})
        assert plan == FaultPlan(seed=9, crash=0.5)


class TestDecisions:
    def test_decisions_are_deterministic(self):
        plan = FaultPlan(seed=11, crash=0.5)
        keys = [f"fp-{i}" for i in range(50)]
        first = [plan.decides("crash", key) for key in keys]
        second = [plan.decides("crash", key) for key in keys]
        assert first == second
        assert any(first) and not all(first)  # rate 0.5 splits the keys

    def test_seed_decorrelates_plans(self):
        keys = [f"fp-{i}" for i in range(100)]
        a = [FaultPlan(seed=1, crash=0.5).decides("crash", k)
             for k in keys]
        b = [FaultPlan(seed=2, crash=0.5).decides("crash", k)
             for k in keys]
        assert a != b

    def test_zero_rate_never_fires(self):
        plan = FaultPlan(seed=11)
        assert not any(plan.decides(kind, f"fp-{i}")
                       for kind in FAULT_KINDS for i in range(50))

    def test_rate_one_always_fires(self):
        plan = FaultPlan(crash=1.0)
        assert all(plan.decides("crash", f"fp-{i}") for i in range(20))

    def test_faults_fire_on_attempt_one_only(self):
        plan = FaultPlan(crash=1.0)
        assert plan.decides("crash", "fp")
        assert not plan.for_attempt(2).decides("crash", "fp")
        assert not plan.for_attempt(3).decides("crash", "fp")

    def test_unknown_kind_raises(self):
        with pytest.raises(FaultSpecError):
            FaultPlan().decides("meltdown", "fp")

    def test_active_property(self):
        assert not FaultPlan().active
        assert FaultPlan(stall=0.01).active

    def test_out_of_range_rates_raise(self):
        with pytest.raises(FaultSpecError):
            FaultPlan(crash=-0.1)
        with pytest.raises(FaultSpecError):
            FaultPlan(hang=1.1)


class TestTornWrite:
    def test_torn_record_is_skipped_and_later_appends_survive(
            self, tmp_path):
        path = str(tmp_path / "results.jsonl")
        torn_write(path, {"name": "victim", "fingerprint": "f1"})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps({"ok": True}) + "\n")
        lines = open(path, encoding="utf-8").read().splitlines()
        assert len(lines) == 2
        with pytest.raises(ValueError):
            json.loads(lines[0])  # the torn half-record
        assert json.loads(lines[1]) == {"ok": True}
