"""Crash-mid-write recovery: torn store lines, ``--resume`` repair,
lease-expiry re-issue of exactly the unfinished entries, and verdict
byte-identity through it all."""

import json
import time

import pytest

from repro.api import EngineConfig
from repro.cli import main
from repro.fabric import LeaseCoordinator, LeaseStore
from repro.fabric.coordinator import lease_key
from repro.fabric.policy import RetryPolicy
from repro.faults import torn_write
from repro.runner import RunStore, SweepPlan, SweepRunner
from repro.runner.store import RunStoreWarning

SELECTION = ["handshake", "vme_read", "inconsistent", "irreducible_csc"]

FAST_RETRY = RetryPolicy(max_attempts=3, base_delay=0.0, max_delay=0.0,
                         jitter=0.0)


def stable_json(sweep):
    return json.dumps(sweep.stable_json_dict(), sort_keys=True)


class TestTornStoreWrites:
    def test_truncated_writes_leave_torn_lines_then_heal_via_steal(
            self, tmp_path):
        """truncate=1: every first write is torn, every lease expires
        unreleased, every entry is stolen and re-run -- and the final
        sweep is still byte-identical to a clean one."""
        reference = SweepRunner(SweepPlan(names=SELECTION)).run()
        store = RunStore(str(tmp_path / "store"))
        plan = SweepPlan(names=SELECTION, backend="serial",
                         config=EngineConfig(fault_plan="truncate=1,seed=5"))
        coordinator = LeaseCoordinator(
            plan, leases=str(tmp_path / "leases"), store=store,
            policy=FAST_RETRY, lease_duration=0.2)
        sweep = coordinator.run()
        assert stable_json(sweep) == stable_json(reference)
        assert coordinator.metrics.snapshot()[
            "fabric.retry.truncated"]["value"] == len(SELECTION)
        # The torn half-records are visible to a fresh load as corrupt
        # lines -- the exact state a killed sweep leaves behind.
        with pytest.warns(RunStoreWarning):
            reloaded = RunStore(str(tmp_path / "store"))
        assert reloaded.skipped_lines == len(SELECTION)
        assert len(reloaded) == len(SELECTION)  # the good second writes
        reloaded.compact()
        assert RunStore(str(tmp_path / "store")).skipped_lines == 0

    def test_resume_flag_compacts_the_damaged_store(self, tmp_path,
                                                    capsys):
        store_dir = tmp_path / "store"
        first = main(["batch-check", "handshake", "--cache-dir",
                      str(store_dir)])
        assert first == 0
        # A crash mid-append: the trailing record is torn in half.
        torn_write(str(store_dir / "results.jsonl"),
                   {"name": "victim", "fingerprint": "f1",
                    "status": "ok", "engine": "symbolic"})
        with pytest.warns(RunStoreWarning):
            resumed = main(["batch-check", "handshake", "--cache-dir",
                            str(store_dir), "--resume"])
        assert resumed == 0
        out = capsys.readouterr().out
        assert "cached" in out
        # --resume compacted: the file is pure JSONL again.
        lines = open(store_dir / "results.jsonl",
                     encoding="utf-8").read().splitlines()
        assert all(json.loads(line) for line in lines)
        assert RunStore(str(store_dir)).skipped_lines == 0


class TestLeaseExpiryReissue:
    def test_exactly_the_unfinished_fingerprints_are_reissued(
            self, tmp_path):
        """The mid-crash state: two entries verified and released, two
        left behind under a dead worker's expired leases.  A fresh
        coordinator re-issues exactly the unfinished two."""
        plan = SweepPlan(names=SELECTION, backend="serial")
        tasks = plan.tasks()
        finished, unfinished = tasks[:2], tasks[2:]

        store = RunStore(str(tmp_path / "store"))
        done = SweepRunner(SweepPlan(names=[t.name for t in finished]),
                           store=store).run()
        assert done.succeeded

        leases = LeaseStore(str(tmp_path / "leases"))
        stale_now = time.monotonic() - 100.0
        for task in unfinished:
            assert leases.claim(lease_key(task), task.name,
                                "dead-worker", duration=5.0,
                                now=stale_now) is not None

        executed = []
        coordinator = LeaseCoordinator(
            plan, leases=leases, store=store, policy=FAST_RETRY,
            progress=lambda result: executed.append(result))
        sweep = coordinator.run()
        assert sweep.succeeded
        computed = [r.name for r in sweep.results if not r.cached]
        assert sorted(computed) == sorted(t.name for t in unfinished)
        # Both dead leases were stolen, none invented.
        snapshot = coordinator.metrics.snapshot()
        assert snapshot["fabric.lease.reclaims"]["value"] == \
            len(unfinished)
        assert snapshot["fabric.lease.claims"]["value"] == \
            len(unfinished)

    def test_reissued_verdicts_are_byte_identical_to_a_clean_sweep(
            self, tmp_path):
        reference = SweepRunner(SweepPlan(names=SELECTION)).run()
        plan = SweepPlan(names=SELECTION, backend="serial")
        leases = LeaseStore(str(tmp_path / "leases"))
        stale_now = time.monotonic() - 100.0
        for task in plan.tasks():
            leases.claim(lease_key(task), task.name, "dead-worker",
                         duration=5.0, now=stale_now)
        sweep = LeaseCoordinator(plan, leases=leases,
                                 policy=FAST_RETRY).run()
        assert stable_json(sweep) == stable_json(reference)
