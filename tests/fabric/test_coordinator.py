"""LeaseCoordinator: clean and fault-injected parity with the plain
runner, retry accounting, work stealing, drain, issue order."""

import json
import time

import pytest

from repro.api import EngineConfig
from repro.fabric import LeaseCoordinator, LeaseStore, RetryPolicy
from repro.fabric.coordinator import METRICS_FILE, lease_key
from repro.runner import RunStore, SweepPlan, SweepRunner

#: Small but mixed-verdict corpus slice: fast, and any scheduling
#: influence on verdicts would show up in stable JSON immediately.
SELECTION = ["handshake", "vme_read", "inconsistent", "irreducible_csc",
             "random_ring_n4_s1"]

#: No-sleep retry policy: backoff exists but costs no wall clock.
FAST_RETRY = RetryPolicy(max_attempts=3, base_delay=0.0, max_delay=0.0,
                         jitter=0.0)


def stable_json(sweep):
    return json.dumps(sweep.stable_json_dict(), sort_keys=True)


def coordinate(tmp_path, config=None, policy=FAST_RETRY, names=SELECTION,
               lease_duration=30.0, **kwargs):
    plan = SweepPlan(names=list(names), jobs=2, backend="thread",
                     config=config or EngineConfig())
    coordinator = LeaseCoordinator(
        plan, leases=str(tmp_path / "leases"), policy=policy,
        lease_duration=lease_duration, **kwargs)
    return coordinator, coordinator.run()


class TestCleanParity:
    def test_lease_sweep_matches_the_plain_runner_byte_for_byte(
            self, tmp_path):
        reference = SweepRunner(SweepPlan(names=SELECTION)).run()
        _, sweep = coordinate(tmp_path)
        assert stable_json(sweep) == stable_json(reference)
        assert sweep.succeeded

    def test_results_preserve_plan_order(self, tmp_path):
        _, sweep = coordinate(tmp_path)
        assert [result.name for result in sweep] == SELECTION

    def test_every_lease_is_released(self, tmp_path):
        coordinator, _ = coordinate(tmp_path)
        assert coordinator.leases.active_leases() == []
        snapshot = coordinator.metrics.snapshot()
        assert snapshot["fabric.lease.claims"]["value"] == len(SELECTION)
        assert snapshot["fabric.lease.releases"]["value"] == \
            len(SELECTION)

    def test_metrics_snapshot_is_written_to_the_lease_dir(self, tmp_path):
        coordinate(tmp_path)
        with open(tmp_path / "leases" / METRICS_FILE,
                  encoding="utf-8") as handle:
            snapshot = json.load(handle)
        assert snapshot["rounds"] >= 1
        assert "fabric.lease.claims" in snapshot["metrics"]


class TestFaultedParity:
    def test_universal_crashes_are_retried_to_the_clean_verdicts(
            self, tmp_path):
        reference = SweepRunner(SweepPlan(names=SELECTION)).run()
        coordinator, sweep = coordinate(
            tmp_path, config=EngineConfig(fault_plan="crash=1,seed=5"))
        assert stable_json(sweep) == stable_json(reference)
        snapshot = coordinator.metrics.snapshot()
        assert snapshot["fabric.retry.error"]["value"] == len(SELECTION)

    def test_universal_hangs_surface_as_timeouts_then_recover(
            self, tmp_path):
        reference = SweepRunner(SweepPlan(names=SELECTION)).run()
        coordinator, sweep = coordinate(
            tmp_path, config=EngineConfig(fault_plan="hang=1,seed=5"))
        assert stable_json(sweep) == stable_json(reference)
        snapshot = coordinator.metrics.snapshot()
        assert snapshot["fabric.retry.timeout"]["value"] == len(SELECTION)

    def test_exhausted_retries_keep_the_best_so_far_record(self, tmp_path):
        # Attempt budget 1 + guaranteed crash: no retry ever happens,
        # the error record is the entry's final word, the sweep ends.
        _, sweep = coordinate(
            tmp_path, names=["handshake"],
            config=EngineConfig(fault_plan="crash=1,seed=5"),
            policy=RetryPolicy(max_attempts=1))
        result, = sweep.results
        assert result.status == "error"
        assert "injected worker crash" in result.error
        assert result.provenance["attempt"] == "1"

    def test_retry_provenance_records_the_final_attempt(self, tmp_path):
        _, sweep = coordinate(
            tmp_path, names=["handshake"],
            config=EngineConfig(fault_plan="crash=1,seed=5"))
        result, = sweep.results
        assert result.status == "ok"
        assert result.provenance["attempt"] == "2"


class TestWorkStealing:
    def test_expired_foreign_lease_is_stolen(self, tmp_path):
        plan = SweepPlan(names=["handshake"], backend="serial")
        leases = LeaseStore(str(tmp_path / "leases"))
        task, = plan.tasks()
        # A dead worker's lease: claimed long ago, never renewed.
        stale = leases.claim(lease_key(task), task.name, "dead-worker",
                             duration=5.0,
                             now=time.monotonic() - 100.0)
        assert stale is not None
        coordinator = LeaseCoordinator(plan, leases=leases,
                                       policy=FAST_RETRY)
        sweep = coordinator.run()
        assert sweep.results[0].status == "ok"
        assert coordinator.metrics.snapshot()[
            "fabric.lease.reclaims"]["value"] == 1

    def test_validly_leased_entry_is_not_double_issued(self, tmp_path):
        plan = SweepPlan(names=["handshake", "vme_read"],
                         backend="serial")
        leases = LeaseStore(str(tmp_path / "leases"))
        held, other = plan.tasks()
        foreign = leases.claim(lease_key(held), held.name, "other-host",
                               duration=0.6)
        coordinator = LeaseCoordinator(plan, leases=leases,
                                       policy=FAST_RETRY,
                                       lease_duration=0.6)
        sweep = coordinator.run()
        # The coordinator waited out the foreign lease, then stole it:
        # both entries end verified, nothing ran while validly leased.
        assert [r.status for r in sweep.results] == ["ok", "ok"]
        assert foreign.expired()


class TestDrain:
    def test_pre_drained_coordinator_reports_unrun_entries(self, tmp_path):
        plan = SweepPlan(names=SELECTION)
        coordinator = LeaseCoordinator(plan,
                                       leases=str(tmp_path / "leases"),
                                       policy=FAST_RETRY)
        coordinator.request_drain()
        sweep = coordinator.run()
        assert len(sweep) == len(SELECTION)
        assert all(result.status == "error" for result in sweep)
        assert all("drained" in result.error for result in sweep)

    def test_drained_sweep_keeps_cached_verdicts(self, tmp_path):
        store = RunStore(str(tmp_path / "store"))
        plan = SweepPlan(names=SELECTION)
        LeaseCoordinator(plan, leases=str(tmp_path / "l1"), store=store,
                         policy=FAST_RETRY).run()
        drained = LeaseCoordinator(plan, leases=str(tmp_path / "l2"),
                                   store=store, policy=FAST_RETRY)
        drained.request_drain()
        sweep = drained.run()
        # Everything was already in the store: the drain had nothing
        # left to refuse.
        assert all(result.status == "ok" for result in sweep)
        assert all(result.cached for result in sweep)


class TestIssueOrder:
    def test_longest_job_first_with_unknowns_leading(self, tmp_path):
        plan = SweepPlan(names=["handshake", "vme_read", "mutex_element"])
        store = RunStore(str(tmp_path / "store"))
        sweep = SweepRunner(plan, store=store).run()
        coordinator = LeaseCoordinator(plan, leases=str(tmp_path / "l"),
                                       store=store)
        tasks = plan.tasks()
        order = coordinator._issue_order(tasks, [0, 1, 2])
        durations = {i: store.duration_hint(tasks[i].name)
                     for i in range(3)}
        assert sorted(order, key=lambda i: -durations[i]) == order
        # An entry the store never saw sorts ahead of every known one.
        fresh_plan = SweepPlan(names=["choice_controller", "handshake"])
        fresh = LeaseCoordinator(fresh_plan, leases=str(tmp_path / "l2"),
                                 store=store)
        assert fresh._issue_order(fresh_plan.tasks(), [0, 1]) == [0, 1]

    def test_invalid_lease_duration_is_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            LeaseCoordinator(SweepPlan(names=["handshake"]),
                             leases=str(tmp_path), lease_duration=0.0)
