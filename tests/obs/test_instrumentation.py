"""The instrumented stack: parse -> encoding -> ordering -> traversal
-> checks -> synthesis all emit spans, and the per-stage self times
account for the entry's wall time."""

from repro import api, obs
from repro.obs.report import (
    events_of,
    stage_breakdown,
    trace_meta,
    trace_wall_s,
)
from repro.runner.plan import SweepPlan
from repro.runner.worker import execute_payload
from repro.stg.generators import build_example


def traced_worker_run(name="vme_read", provenance=None, **config):
    task = SweepPlan(names=[name]).tasks()[0]
    payload = task.to_payload()
    payload["config"].update(config)
    payload["provenance"] = dict(provenance or {})
    sink = obs.InMemorySink()
    real_tracing = obs.tracing

    def capture(trace_dir=None, **kwargs):
        kwargs.pop("sink", None)
        return real_tracing(sink=sink, **kwargs)

    obs.tracing = capture
    try:
        result = execute_payload(payload)
    finally:
        obs.tracing = real_tracing
    return result, sink.records


class TestPipelineSpans:
    def test_full_stack_emits_the_stage_vocabulary(self):
        sink = obs.InMemorySink()
        stg = build_example("muller_pipeline", 3)
        with obs.tracing(name=stg.name, sink=sink):
            pipeline = api.run(stg).pipeline
        names = {record["name"] for record in sink.spans()}
        assert {"encoding", "ordering", "traversal", "check"} <= names
        assert pipeline is not None

    def test_traversal_span_carries_stats_and_bdd_deltas(self):
        sink = obs.InMemorySink()
        stg = build_example("muller_pipeline", 3)
        with obs.tracing(name=stg.name, sink=sink):
            api.run(stg)
        traversal, = [s for s in sink.spans()
                      if s["name"] == "traversal"]
        assert traversal["attrs"]["iterations"] > 0
        assert traversal["attrs"]["peak_nodes"] > 0
        assert traversal["bdd"]["lookups"] > 0

    def test_iteration_events_report_frontier_sizes(self):
        sink = obs.InMemorySink()
        stg = build_example("muller_pipeline", 3)
        with obs.tracing(name=stg.name, sink=sink):
            api.run(stg)
        iterations = [e for e in events_of(sink.records)
                      if e["name"] == "iteration"]
        assert iterations
        assert all(e["attrs"]["frontier_nodes"] > 0 for e in iterations)

    def test_check_spans_are_keyed_by_check_attr(self):
        sink = obs.InMemorySink()
        stg = build_example("muller_pipeline", 3)
        with obs.tracing(name=stg.name, sink=sink):
            api.run(stg)
        checks = {s["attrs"]["check"] for s in sink.spans()
                  if s["name"] == "check"}
        assert "consistency" in checks and "csc" in checks

    def test_explicit_engine_emits_check_spans_too(self):
        sink = obs.InMemorySink()
        stg = build_example("muller_pipeline", 3)
        with obs.tracing(name=stg.name, sink=sink):
            api.run(stg, api.EngineConfig(engine="explicit"))
        assert any(s["name"] == "check" for s in sink.spans())

    def test_synthesis_spans(self):
        from repro.core.pipeline import VerificationPipeline
        from repro.synthesis.complex_gate import synthesize_complex_gates

        sink = obs.InMemorySink()
        pipeline = VerificationPipeline(build_example("muller_pipeline", 3))
        with obs.tracing(name="synth", sink=sink):
            gates = synthesize_complex_gates(pipeline.encoding,
                                             pipeline.reached)
        synthesis, = [s for s in sink.spans()
                      if s["name"] == "synthesis"]
        assert synthesis["attrs"]["gates"] == len(gates)
        assert synthesis["bdd"]["lookups"] > 0

    def test_untraced_run_still_verifies(self):
        outcome = api.run(build_example("muller_pipeline", 3))
        assert outcome.report.consistent
        assert outcome.traversal is not None


class TestWorkerTraces:
    def test_stage_self_times_account_for_the_entry_duration(self):
        # The acceptance criterion: per-stage self times sum to the
        # traced wall time exactly (telescoping) and to the worker's
        # own duration measurement within 10%.
        result, records = traced_worker_run("vme_read")
        stages = stage_breakdown(records)
        stage_sum = sum(entry["self_s"] for entry in stages.values())
        wall = trace_wall_s(records)
        assert abs(stage_sum - wall) < 1e-5
        assert abs(stage_sum - result["duration"]) / result["duration"] \
            < 0.10

    def test_entry_span_parents_every_stage(self):
        _, records = traced_worker_run("vme_read")
        spans = [r for r in records if r["type"] == "span"]
        entry, = [s for s in spans if s["name"] == "entry"]
        assert entry["parent"] is None
        assert all(s["parent"] is not None
                   for s in spans if s is not entry)
        assert {"parse", "traversal"} <= {s["name"] for s in spans}

    def test_meta_carries_provenance_and_fingerprint(self):
        provenance = {"backend": "thread", "shard": "2/4"}
        result, records = traced_worker_run("vme_read",
                                            provenance=provenance)
        meta = trace_meta(records)
        assert meta["provenance"] == provenance
        assert meta["fingerprint"] == result["fingerprint"]
        assert meta["entry"] == "vme_read"

    def test_entry_span_records_the_status(self):
        _, records = traced_worker_run("vme_read")
        entry, = [s for s in records
                  if s["type"] == "span" and s["name"] == "entry"]
        assert entry["attrs"]["status"] == "ok"
