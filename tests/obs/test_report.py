"""Report-side trace analysis: self-time telescoping, breakdowns,
summaries and the --profile formatter."""

import pytest

from repro.core.stats import TraversalStats
from repro.obs.report import (
    cache_breakdown,
    format_traversal,
    merge_cache_tables,
    merge_stage_tables,
    self_times,
    span_label,
    stage_breakdown,
    trace_summary,
    trace_wall_s,
)


def span(span_id, parent, name, duration, attrs=None, bdd=None):
    record = {"type": "span", "id": span_id, "parent": parent,
              "depth": 0 if parent is None else 1, "name": name,
              "start_s": 0.0, "duration_s": duration}
    if attrs:
        record["attrs"] = attrs
    if bdd:
        record["bdd"] = bdd
    return record


#: entry(1.0s) -> traversal(0.6) + check:csc(0.3); 0.1 self.
TREE = [
    {"type": "meta", "schema": 1, "entry": "vme_read",
     "fingerprint": "abc", "provenance": {"backend": "process"}},
    span(1, 0, "traversal", 0.6,
         bdd={"lookups": 100, "hits": 25, "evictions": 0,
              "live_nodes": 40, "live_nodes_delta": 10}),
    span(2, 0, "check", 0.3, attrs={"check": "csc"}),
    span(0, None, "entry", 1.0),
    {"type": "event", "span": 1, "name": "iteration", "at_s": 0.2},
    {"type": "end", "wall_s": 1.001},
]


class TestSelfTimes:
    def test_self_time_subtracts_direct_children(self):
        times = self_times(TREE)
        assert times[0] == pytest.approx(0.1)
        assert times[1] == 0.6
        assert times[2] == 0.3

    def test_self_times_telescope_to_the_root_duration(self):
        assert abs(sum(self_times(TREE).values()) - 1.0) < 1e-9

    def test_negative_self_time_is_clamped(self):
        # Clock granularity can make children sum past the parent.
        records = [span(0, None, "entry", 0.1), span(1, 0, "work", 0.2)]
        assert self_times(records)[0] == 0.0


class TestBreakdowns:
    def test_span_label_appends_the_check_attr(self):
        assert span_label(span(2, 0, "check", 0.3,
                               attrs={"check": "csc"})) == "check:csc"
        assert span_label(span(1, 0, "traversal", 0.6)) == "traversal"

    def test_stage_breakdown_sums_to_wall(self):
        stages = stage_breakdown(TREE)
        assert set(stages) == {"entry", "traversal", "check:csc"}
        assert abs(sum(s["self_s"] for s in stages.values())
                   - trace_wall_s(TREE)) < 1e-6
        assert stages["entry"]["total_s"] == 1.0

    def test_cache_breakdown_computes_hit_rates(self):
        cache = cache_breakdown(TREE)
        assert list(cache) == ["traversal"]
        assert cache["traversal"]["hit_rate"] == 0.25

    def test_trace_summary_carries_identity_and_provenance(self):
        summary = trace_summary(TREE)
        assert summary["entry"] == "vme_read"
        assert summary["fingerprint"] == "abc"
        assert summary["provenance"] == {"backend": "process"}
        assert summary["wall_s"] == 1.0
        assert summary["events"] == 1


class TestMerging:
    def test_merge_stage_tables_sums_across_entries(self):
        one = trace_summary(TREE)
        merged = merge_stage_tables([one, one])
        assert merged["traversal"]["self_s"] == 1.2
        assert merged["traversal"]["count"] == 2

    def test_merge_cache_tables_recomputes_the_rate(self):
        one = trace_summary(TREE)
        merged = merge_cache_tables([one, one])
        assert merged["traversal"]["lookups"] == 200
        assert merged["traversal"]["hit_rate"] == 0.25


class TestFormatTraversal:
    def test_formats_through_the_stats_layer(self):
        stats = TraversalStats(iterations=3, images_computed=12,
                               peak_nodes=40, final_nodes=38,
                               wall_time_s=0.5, peak_live_nodes=90,
                               cache_lookups=200, cache_hits=60)
        text = format_traversal(stats.to_dict())
        assert "traversal=0.500s" in text
        assert "iterations=3" in text
        assert "hit_rate=0.30" in text

    def test_unknown_rate_renders_as_dash(self):
        text = format_traversal(TraversalStats(iterations=1).to_dict())
        assert "hit_rate=-" in text

    def test_empty_input_is_empty(self):
        assert format_traversal(None) == ""
        assert format_traversal({}) == ""
