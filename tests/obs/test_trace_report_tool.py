"""tools/trace_report.py: aggregation, exit codes, --json schema,
salvage of corrupt trace files."""

import json
import os
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))))
if REPO_ROOT not in sys.path:
    sys.path.insert(0, REPO_ROOT)

from tools import trace_report  # noqa: E402


def write_trace(directory, name, fingerprint, wall=1.0,
                backend="process"):
    path = os.path.join(str(directory), f"{name}-{fingerprint}.jsonl")
    records = [
        {"type": "meta", "schema": 1, "entry": name,
         "fingerprint": fingerprint,
         "provenance": {"backend": backend, "shard": "0/1"}},
        {"type": "span", "id": 1, "parent": 0, "depth": 1,
         "name": "traversal", "start_s": 0.0, "duration_s": wall * 0.6,
         "bdd": {"lookups": 100, "hits": 30, "evictions": 0,
                 "live_nodes": 10, "live_nodes_delta": 5}},
        {"type": "span", "id": 0, "parent": None, "depth": 0,
         "name": "entry", "start_s": 0.0, "duration_s": wall},
        {"type": "end", "wall_s": wall},
    ]
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
    return path


class TestAggregation:
    def test_text_report_over_two_directories(self, tmp_path, capsys):
        first, second = tmp_path / "a", tmp_path / "b"
        first.mkdir(), second.mkdir()
        write_trace(first, "slow", "aaa111", wall=2.0)
        write_trace(second, "fast", "bbb222", wall=0.5, backend="thread")
        assert trace_report.main([str(first), str(second)]) == 0
        out = capsys.readouterr().out
        assert "2 entries from 2 trace files" in out
        assert out.index("slow") < out.index("fast")
        assert "traversal" in out and "hit-rate=0.3" in out

    def test_top_limits_the_slowest_list(self, tmp_path):
        for index in range(5):
            write_trace(tmp_path, f"e{index}", f"f{index}", wall=index + 1)
        document = trace_report.aggregate([str(tmp_path)], top=2)
        assert [s["entry"] for s in document["slowest"]] == ["e4", "e3"]
        assert document["entries"] == 5

    def test_json_document_schema(self, tmp_path, capsys):
        write_trace(tmp_path, "one", "fp1")
        assert trace_report.main([str(tmp_path), "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == trace_report.SCHEMA
        assert set(document) >= {"directories", "trace_files", "entries",
                                 "skipped_lines", "wall_s", "slowest",
                                 "stages", "cache"}
        assert document["slowest"][0]["provenance"]["backend"] == \
            "process"
        assert document["stages"]["entry"]["count"] == 1


class TestExitCodes:
    def test_missing_directory_is_1(self, tmp_path, capsys):
        assert trace_report.main([str(tmp_path / "nope")]) == 1
        assert "no such trace directory" in capsys.readouterr().err

    def test_empty_directory_is_1(self, tmp_path, capsys):
        assert trace_report.main([str(tmp_path)]) == 1
        assert "no trace files" in capsys.readouterr().err

    def test_usage_error_is_2(self, capsys):
        assert trace_report.main([]) == 2


class TestSalvage:
    def test_corrupt_trailing_line_is_counted_not_fatal(self, tmp_path,
                                                        capsys):
        path = write_trace(tmp_path, "one", "fp1")
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"type": "span", "id": 9, "trunc')
        with pytest.warns(Warning):
            assert trace_report.main([str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "skipped 1 corrupt trace line" in out

    def test_entirely_corrupt_file_contributes_nothing(self, tmp_path,
                                                       capsys):
        write_trace(tmp_path, "good", "fp1")
        (tmp_path / "bad-ffff.jsonl").write_text("not json\n")
        with pytest.warns(Warning):
            assert trace_report.main([str(tmp_path)]) == 0
        assert "1 entries from 2 trace files" in capsys.readouterr().out
