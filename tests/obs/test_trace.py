"""The tracing substrate: spans, the no-op path, activation scoping."""

import pytest

from repro import obs
from repro.bdd import BDDManager
from repro.obs.trace import NULL_SPAN, Span


def make_tracer(**kwargs):
    sink = obs.InMemorySink()
    return obs.Tracer(sinks=[sink], **kwargs), sink


class TestDisabledPath:
    def test_span_without_tracer_is_the_shared_null_span(self):
        assert obs.active() is None
        assert obs.span("traversal") is NULL_SPAN
        assert obs.span("check", check="csc") is NULL_SPAN

    def test_null_span_is_falsy_and_inert(self):
        with obs.span("anything") as span:
            assert span is NULL_SPAN
            assert not span
            span.annotate(iterations=3)
            span.event("iteration", frontier=12)

    def test_event_without_tracer_is_a_no_op(self):
        obs.event("iteration", frontier=12)


class TestActivation:
    def test_activated_scopes_the_tracer(self):
        tracer, _ = make_tracer()
        with obs.activated(tracer):
            assert obs.active() is tracer
            assert obs.span("work") is not NULL_SPAN
        assert obs.active() is None
        assert obs.span("work") is NULL_SPAN

    def test_activation_resets_even_on_error(self):
        tracer, _ = make_tracer()
        with pytest.raises(RuntimeError):
            with obs.activated(tracer):
                raise RuntimeError("boom")
        assert obs.active() is None

    def test_thread_isolation(self):
        # Pool threads must not see another context's tracer.
        import threading

        tracer, _ = make_tracer()
        seen = []
        with obs.activated(tracer):
            thread = threading.Thread(
                target=lambda: seen.append(obs.active()))
            thread.start()
            thread.join()
        assert seen == [None]


class TestSpanTree:
    def test_nesting_assigns_parents_and_depths(self):
        tracer, sink = make_tracer()
        with obs.activated(tracer):
            with obs.span("entry"):
                with obs.span("traversal"):
                    pass
                with obs.span("check", check="csc"):
                    pass
        spans = {s["name"]: s for s in sink.spans()}
        assert spans["entry"]["parent"] is None
        assert spans["entry"]["depth"] == 0
        assert spans["traversal"]["parent"] == spans["entry"]["id"]
        assert spans["check"]["parent"] == spans["entry"]["id"]
        assert spans["traversal"]["depth"] == 1
        # Children close (and are emitted) before their parent.
        order = [s["name"] for s in sink.spans()]
        assert order == ["traversal", "check", "entry"]

    def test_span_records_duration_and_attrs(self):
        tracer, sink = make_tracer()
        with obs.activated(tracer):
            with obs.span("work", phase="T+C") as span:
                span.annotate(iterations=5)
        record, = sink.spans()
        assert record["duration_s"] >= 0.0
        assert record["attrs"] == {"phase": "T+C", "iterations": 5}

    def test_exception_annotates_and_propagates(self):
        tracer, sink = make_tracer()
        with obs.activated(tracer):
            with pytest.raises(ValueError):
                with obs.span("work"):
                    raise ValueError("bad")
        record, = sink.spans()
        assert record["attrs"]["error"] == "ValueError"

    def test_events_attach_to_the_innermost_open_span(self):
        tracer, sink = make_tracer()
        with obs.activated(tracer):
            obs.event("outside")
            with obs.span("loop"):
                obs.event("iteration", frontier=7)
        outside, inside = sink.events()
        assert outside["span"] is None
        assert inside["span"] == sink.spans()[0]["id"]
        assert inside["attrs"] == {"frontier": 7}

    def test_span_record_round_trips(self):
        tracer, sink = make_tracer()
        with obs.activated(tracer):
            with obs.span("check", check="csc"):
                pass
        record, = sink.spans()
        span = Span.from_dict(record)
        assert span.name == "check"
        assert span.attrs == {"check": "csc"}
        assert span.to_dict() == record


class TestBddDeltas:
    def test_manager_bound_span_records_cache_deltas(self):
        manager = BDDManager()
        a, b = manager.add_var("a"), manager.add_var("b")
        tracer, sink = make_tracer()
        with obs.activated(tracer):
            with obs.span("traversal", manager=manager):
                (a & b) | (a ^ b)
        record, = sink.spans()
        bdd = record["bdd"]
        assert bdd["lookups"] > 0
        assert 0 <= bdd["hits"] <= bdd["lookups"]
        assert bdd["live_nodes"] == manager.num_nodes
        assert bdd["live_nodes"] - bdd["live_nodes_delta"] >= 0

    def test_unbound_span_has_no_bdd_section(self):
        tracer, sink = make_tracer()
        with obs.activated(tracer):
            with obs.span("parse"):
                pass
        assert "bdd" not in sink.spans()[0]


class TestTracerLifecycle:
    def test_meta_record_is_first_and_carries_the_schema(self):
        tracer, sink = make_tracer(meta={"entry": "vme_read",
                                         "fingerprint": "abc"})
        tracer.finish()
        assert sink.records[0]["type"] == "meta"
        assert sink.records[0]["schema"] == obs.TRACE_SCHEMA_VERSION
        assert sink.records[0]["entry"] == "vme_read"

    def test_finish_emits_end_with_metrics_and_closes_sinks(self):
        tracer, sink = make_tracer()
        tracer.metrics.counter("entries").add(3)
        tracer.finish()
        end = sink.records[-1]
        assert end["type"] == "end"
        assert end["wall_s"] >= 0.0
        assert end["metrics"]["entries"]["value"] == 3
        assert sink.closed

    def test_finish_is_idempotent(self):
        tracer, sink = make_tracer()
        tracer.finish()
        tracer.finish()
        assert sum(1 for r in sink.records if r["type"] == "end") == 1


class TestTracingFrontDoor:
    def test_untraced_block_yields_none(self):
        with obs.tracing() as tracer:
            assert tracer is None
            assert obs.span("work") is NULL_SPAN

    def test_sink_block_activates_and_finishes(self):
        sink = obs.InMemorySink()
        with obs.tracing(name="vme_read", sink=sink) as tracer:
            assert obs.active() is tracer
            with obs.span("work"):
                pass
        assert obs.active() is None
        assert sink.records[0]["type"] == "meta"
        assert sink.records[-1]["type"] == "end"

    def test_trace_dir_block_writes_the_entry_file(self, tmp_path):
        with obs.tracing(trace_dir=str(tmp_path), name="a b/c",
                         fingerprint="0123456789abcdef"):
            with obs.span("work"):
                pass
        path = tmp_path / "a_b_c-0123456789ab.jsonl"
        assert path.exists()
        records, skipped = obs.read_trace_records(str(path))
        assert skipped == 0
        assert [r["type"] for r in records] == ["meta", "span", "end"]
