"""Trace sinks: JSONL files, salvage reads, entry-file naming."""

import json

import pytest

from repro import obs
from repro.obs.sinks import (
    FINGERPRINT_PREFIX,
    JSONLSink,
    TraceReadWarning,
    read_trace_records,
    safe_filename,
)


class TestEntryFileNaming:
    def test_safe_filename_keeps_the_corpus_vocabulary(self):
        assert safe_filename("muller_pipeline@16") == "muller_pipeline@16"
        assert safe_filename("random_ring_n4.s1") == "random_ring_n4.s1"

    def test_safe_filename_replaces_the_rest(self):
        assert safe_filename("a b/c:d") == "a_b_c_d"
        assert safe_filename("") == "entry"

    def test_for_entry_keys_by_fingerprint_prefix(self, tmp_path):
        fingerprint = "abcdef0123456789" * 4
        sink = JSONLSink.for_entry(str(tmp_path), "vme_read", fingerprint)
        sink.close()
        expected = f"vme_read-{fingerprint[:FINGERPRINT_PREFIX]}.jsonl"
        assert (tmp_path / expected).exists()

    def test_for_entry_without_fingerprint(self, tmp_path):
        sink = JSONLSink.for_entry(str(tmp_path), "vme_read")
        sink.close()
        assert (tmp_path / "vme_read.jsonl").exists()


class TestJsonlRoundTrip:
    def test_records_round_trip_with_sorted_keys(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JSONLSink(str(path))
        sink.emit({"type": "meta", "schema": 1, "entry": "x"})
        sink.emit({"type": "span", "id": 0, "name": "work"})
        sink.close()
        lines = path.read_text().splitlines()
        assert lines[0] == json.dumps(
            {"entry": "x", "schema": 1, "type": "meta"},
            sort_keys=True)
        records, skipped = read_trace_records(str(path))
        assert skipped == 0
        assert records[1]["name"] == "work"

    def test_creates_missing_directories(self, tmp_path):
        path = tmp_path / "a" / "b" / "t.jsonl"
        JSONLSink(str(path)).close()
        assert path.exists()


class TestSalvageReads:
    def test_truncated_trailing_line_warns_and_skips(self, tmp_path):
        path = tmp_path / "t.jsonl"
        good = json.dumps({"type": "span", "id": 0, "name": "work"})
        path.write_text(good + "\n" + '{"type": "span", "id": 1, "na')
        with pytest.warns(TraceReadWarning, match="truncated"):
            records, skipped = read_trace_records(str(path))
        assert skipped == 1
        assert [r["id"] for r in records] == [0]

    def test_non_object_line_warns_and_skips(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('[1, 2]\n{"type": "end", "wall_s": 0.1}\n')
        with pytest.warns(TraceReadWarning):
            records, skipped = read_trace_records(str(path))
        assert skipped == 1
        assert records[0]["type"] == "end"

    def test_blank_lines_are_not_corruption(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('\n{"type": "end", "wall_s": 0.1}\n\n')
        records, skipped = read_trace_records(str(path))
        assert skipped == 0
        assert len(records) == 1


class TestSummarySink:
    def test_renders_the_human_summary(self):
        sink = obs.SummarySink()
        with obs.tracing(name="vme_read", sink=sink):
            with obs.span("traversal"):
                pass
        text = sink.render()
        assert "vme_read" in text
        assert "traversal" in text
