"""Counters, gauges, histograms and the per-tracer metrics registry."""

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
)


class TestInstruments:
    def test_counter_accumulates_and_rejects_decrease(self):
        counter = Counter("images")
        counter.add()
        counter.add(41)
        assert counter.value == 42
        with pytest.raises(ValueError):
            counter.add(-1)
        assert counter.snapshot() == {"kind": "counter", "value": 42}

    def test_gauge_last_write_wins(self):
        gauge = Gauge("live-nodes")
        assert gauge.snapshot() == {"kind": "gauge", "value": None}
        gauge.set(10)
        gauge.set(7)
        assert gauge.snapshot() == {"kind": "gauge", "value": 7}

    def test_histogram_summarises_the_stream(self):
        histogram = Histogram("frontier")
        assert histogram.mean is None
        for value in (4, 2, 6):
            histogram.observe(value)
        assert histogram.snapshot() == {
            "kind": "histogram", "count": 3, "sum": 12,
            "min": 2, "max": 6, "mean": 4.0}


class TestRegistry:
    def test_register_available_get(self):
        registry = MetricsRegistry()
        metric = registry.register("images", Counter("images"))
        assert registry.available() == ["images"]
        assert registry.get("images") is metric

    def test_duplicate_requires_replace(self):
        registry = MetricsRegistry()
        registry.register("images", Counter("images"))
        with pytest.raises(MetricError):
            registry.register("images", Counter("images"))
        replacement = registry.register("images", Counter("images"),
                                        replace=True)
        assert registry.get("images") is replacement

    def test_unregister_is_idempotent(self):
        registry = MetricsRegistry()
        registry.register("images", Counter("images"))
        registry.unregister("images")
        registry.unregister("images")
        assert registry.available() == []

    def test_unknown_name_suggests(self):
        registry = MetricsRegistry()
        registry.register("images", Counter("images"))
        with pytest.raises(MetricError) as error:
            registry.get("image")
        assert "images" in str(error.value)

    def test_get_or_create_accessors(self):
        registry = MetricsRegistry()
        registry.counter("entries").add(2)
        registry.counter("entries").add(3)
        assert registry.get("entries").value == 5
        registry.gauge("depth").set(4)
        registry.histogram("frontier").observe(9)
        assert registry.available() == ["entries", "depth", "frontier"]

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("entries")
        with pytest.raises(MetricError) as error:
            registry.gauge("entries")
        assert "counter" in str(error.value)

    def test_snapshot_is_sorted_by_name(self):
        registry = MetricsRegistry()
        registry.counter("zebra").add(1)
        registry.gauge("alpha").set(2)
        assert list(registry.snapshot()) == ["alpha", "zebra"]

    def test_registries_are_independent(self):
        # Per-tracer instances: no module-level bleed between entries.
        first, second = MetricsRegistry(), MetricsRegistry()
        first.counter("entries").add(1)
        assert second.available() == []
