"""Unit tests for support, sat-count, model enumeration and evaluation."""

import pytest

from repro.bdd import BDDManager
from repro.bdd.analysis import (
    essential_literals,
    evaluate,
    iter_models,
    pick_one,
    sat_count,
    support,
)


@pytest.fixture
def mgr():
    return BDDManager(["a", "b", "c", "d"])


class TestSupport:
    def test_constant_support_empty(self, mgr):
        assert support(mgr.true) == []
        assert support(mgr.false) == []

    def test_variable_support(self, mgr):
        assert support(mgr.var("b")) == ["b"]

    def test_support_in_order(self, mgr):
        f = mgr.var("d") & mgr.var("a")
        assert support(f) == ["a", "d"]

    def test_support_excludes_cancelled_variables(self, mgr):
        a, b = mgr.var("a"), mgr.var("b")
        f = (a & b) | (~a & b)
        assert support(f) == ["b"]


class TestSatCount:
    def test_true_counts_all_assignments(self, mgr):
        assert sat_count(mgr.true) == 16

    def test_false_counts_zero(self, mgr):
        assert sat_count(mgr.false) == 0

    def test_single_variable(self, mgr):
        assert sat_count(mgr.var("a")) == 8

    def test_conjunction(self, mgr):
        assert sat_count(mgr.var("a") & mgr.var("b")) == 4

    def test_xor(self, mgr):
        assert sat_count(mgr.var("a") ^ mgr.var("b")) == 8

    def test_restricted_care_set(self, mgr):
        f = mgr.var("a") | mgr.var("b")
        assert sat_count(f, care_vars=["a", "b"]) == 3

    def test_care_set_must_cover_support(self, mgr):
        f = mgr.var("a") & mgr.var("c")
        with pytest.raises(ValueError):
            sat_count(f, care_vars=["a"])

    def test_count_with_gap_levels(self, mgr):
        # Function skipping variable b between a and c.
        f = mgr.var("a") & mgr.var("c")
        assert sat_count(f) == 4
        assert sat_count(f, care_vars=["a", "b", "c"]) == 2

    def test_count_matches_model_enumeration(self, mgr):
        f = (mgr.var("a") & ~mgr.var("c")) | (mgr.var("b") ^ mgr.var("d"))
        assert sat_count(f) == len(list(iter_models(f)))


class TestIterModels:
    def test_models_of_false_empty(self, mgr):
        assert list(iter_models(mgr.false)) == []

    def test_models_of_cube(self, mgr):
        f = mgr.cube({"a": True, "b": False})
        models = list(iter_models(f, care_vars=["a", "b"]))
        assert models == [{"a": True, "b": False}]

    def test_models_cover_all_satisfying_assignments(self, mgr):
        f = mgr.var("a") | mgr.var("b")
        models = list(iter_models(f, care_vars=["a", "b"]))
        assert len(models) == 3
        for model in models:
            assert model["a"] or model["b"]

    def test_every_model_satisfies_function(self, mgr):
        f = (mgr.var("a") ^ mgr.var("b")) & (mgr.var("c") >> mgr.var("d"))
        for model in iter_models(f):
            assert evaluate(f, model)

    def test_models_are_distinct(self, mgr):
        f = mgr.var("a") | ~mgr.var("d")
        models = [tuple(sorted(m.items())) for m in iter_models(f)]
        assert len(models) == len(set(models))

    def test_care_set_must_cover_support(self, mgr):
        f = mgr.var("a") & mgr.var("b")
        with pytest.raises(ValueError):
            list(iter_models(f, care_vars=["a"]))


class TestPickOne:
    def test_pick_from_false_is_none(self, mgr):
        assert pick_one(mgr.false) is None

    def test_pick_satisfies(self, mgr):
        f = mgr.var("a") & ~mgr.var("c")
        model = pick_one(f)
        assert model is not None
        assert evaluate(f, model)


class TestEvaluate:
    def test_evaluate_true_constant(self, mgr):
        assert evaluate(mgr.true, {})
        assert not evaluate(mgr.false, {})

    def test_evaluate_expression(self, mgr):
        f = (mgr.var("a") & mgr.var("b")) | mgr.var("c")
        assert evaluate(f, {"a": True, "b": True, "c": False})
        assert evaluate(f, {"a": False, "b": False, "c": True})
        assert not evaluate(f, {"a": True, "b": False, "c": False})

    def test_missing_assignment_raises(self, mgr):
        f = mgr.var("a") & mgr.var("b")
        with pytest.raises(ValueError):
            evaluate(f, {"a": True})


class TestEssentialLiterals:
    def test_constants_fix_nothing(self, mgr):
        assert essential_literals(mgr.true) == {}
        assert essential_literals(mgr.false) == {}

    def test_cube_fixes_all_its_literals(self, mgr):
        f = mgr.cube({"a": True, "b": False})
        assert essential_literals(f) == {"a": True, "b": False}

    def test_disjunction_fixes_nothing(self, mgr):
        f = mgr.var("a") | mgr.var("b")
        assert essential_literals(f) == {}

    def test_mixed(self, mgr):
        f = mgr.var("a") & (mgr.var("b") | mgr.var("c"))
        assert essential_literals(f) == {"a": True}
