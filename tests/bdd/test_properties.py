"""Property-based tests of the BDD algebra (hypothesis).

Random boolean expressions over a small variable set are generated as
ASTs, evaluated both through the BDD engine and through direct truth-table
evaluation, and the two must agree.  Additional laws (De Morgan, Shannon,
quantifier duality, ISOP covers) are checked on the same random functions.
"""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.bdd import BDDManager
from repro.bdd.analysis import sat_count
from repro.bdd.cover import cover_function, isop

VARIABLES = ["v0", "v1", "v2", "v3", "v4"]


# ---------------------------------------------------------------------------
# Random expression ASTs
# ---------------------------------------------------------------------------
def _expressions():
    leaves = st.sampled_from(VARIABLES + ["0", "1"])

    def extend(children):
        unary = st.tuples(st.just("not"), children)
        binary = st.tuples(
            st.sampled_from(["and", "or", "xor", "implies"]), children, children)
        return st.one_of(unary, binary)

    return st.recursive(leaves, extend, max_leaves=12)


def _eval_ast(ast, assignment):
    if isinstance(ast, str):
        if ast == "0":
            return False
        if ast == "1":
            return True
        return assignment[ast]
    if ast[0] == "not":
        return not _eval_ast(ast[1], assignment)
    left = _eval_ast(ast[1], assignment)
    right = _eval_ast(ast[2], assignment)
    if ast[0] == "and":
        return left and right
    if ast[0] == "or":
        return left or right
    if ast[0] == "xor":
        return left != right
    if ast[0] == "implies":
        return (not left) or right
    raise AssertionError(f"unknown operator {ast[0]!r}")


def _build_bdd(manager, ast):
    if isinstance(ast, str):
        if ast == "0":
            return manager.false
        if ast == "1":
            return manager.true
        return manager.var(ast)
    if ast[0] == "not":
        return ~_build_bdd(manager, ast[1])
    left = _build_bdd(manager, ast[1])
    right = _build_bdd(manager, ast[2])
    if ast[0] == "and":
        return left & right
    if ast[0] == "or":
        return left | right
    if ast[0] == "xor":
        return left ^ right
    if ast[0] == "implies":
        return left >> right
    raise AssertionError(f"unknown operator {ast[0]!r}")


def _all_assignments():
    for bits in itertools.product([False, True], repeat=len(VARIABLES)):
        yield dict(zip(VARIABLES, bits))


@pytest.fixture
def mgr():
    return BDDManager(VARIABLES)


class TestSemanticsAgainstTruthTable:
    @settings(max_examples=60, deadline=None)
    @given(ast=_expressions())
    def test_bdd_matches_direct_evaluation(self, ast):
        manager = BDDManager(VARIABLES)
        f = _build_bdd(manager, ast)
        for assignment in _all_assignments():
            assert f.evaluate(assignment) == _eval_ast(ast, assignment)

    @settings(max_examples=60, deadline=None)
    @given(ast=_expressions())
    def test_sat_count_matches_truth_table(self, ast):
        manager = BDDManager(VARIABLES)
        f = _build_bdd(manager, ast)
        expected = sum(_eval_ast(ast, a) for a in _all_assignments())
        assert sat_count(f, care_vars=VARIABLES) == expected


class TestAlgebraicLaws:
    @settings(max_examples=40, deadline=None)
    @given(ast1=_expressions(), ast2=_expressions())
    def test_de_morgan(self, ast1, ast2):
        manager = BDDManager(VARIABLES)
        f = _build_bdd(manager, ast1)
        g = _build_bdd(manager, ast2)
        assert ~(f & g) == (~f | ~g)
        assert ~(f | g) == (~f & ~g)

    @settings(max_examples=40, deadline=None)
    @given(ast=_expressions(), variable=st.sampled_from(VARIABLES))
    def test_shannon_expansion(self, ast, variable):
        manager = BDDManager(VARIABLES)
        f = _build_bdd(manager, ast)
        x = manager.var(variable)
        rebuilt = (x & f.cofactor({variable: True})) | \
            (~x & f.cofactor({variable: False}))
        assert rebuilt == f

    @settings(max_examples=40, deadline=None)
    @given(ast=_expressions(), variable=st.sampled_from(VARIABLES))
    def test_quantifier_duality(self, ast, variable):
        manager = BDDManager(VARIABLES)
        f = _build_bdd(manager, ast)
        assert f.exist([variable]) == ~((~f).forall([variable]))

    @settings(max_examples=40, deadline=None)
    @given(ast=_expressions(), variable=st.sampled_from(VARIABLES))
    def test_existential_abstraction_is_upper_bound(self, ast, variable):
        manager = BDDManager(VARIABLES)
        f = _build_bdd(manager, ast)
        assert f <= f.exist([variable])
        assert f.forall([variable]) <= f

    @settings(max_examples=40, deadline=None)
    @given(ast=_expressions())
    def test_isop_cover_is_exact(self, ast):
        manager = BDDManager(VARIABLES)
        f = _build_bdd(manager, ast)
        assert cover_function(f, isop(f)) == f

    @settings(max_examples=40, deadline=None)
    @given(ast1=_expressions(), ast2=_expressions(),
           variable=st.sampled_from(VARIABLES))
    def test_and_exist_matches_composition(self, ast1, ast2, variable):
        manager = BDDManager(VARIABLES)
        f = _build_bdd(manager, ast1)
        g = _build_bdd(manager, ast2)
        assert f.and_exist(g, [variable]) == (f & g).exist([variable])

    @settings(max_examples=30, deadline=None)
    @given(ast=_expressions())
    def test_negation_involution_and_sat_complement(self, ast):
        manager = BDDManager(VARIABLES)
        f = _build_bdd(manager, ast)
        assert ~~f == f
        total = 1 << len(VARIABLES)
        assert sat_count(f) + sat_count(~f) == total
