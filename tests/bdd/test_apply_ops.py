"""The specialised binary apply routines: correctness, caches, eviction.

The kernel used to funnel every connective through the generic ``ite``;
``apply_and``/``apply_or``/``apply_xor``/``apply_diff`` now recurse
directly with their own caches and terminal short-circuits.  These tests
pin them against an ``ite``-based reference on exhaustive small cases
and randomised functions, and cover the generational cache eviction that
replaced the clear-everything policy.
"""

import itertools
import random

import pytest

from repro.bdd import BDDManager
from repro.bdd.manager import FALSE_ID, TRUE_ID


@pytest.fixture
def mgr():
    return BDDManager(["a", "b", "c", "d", "e"])


def reference_and(mgr, f, g):
    return mgr.ite(f, g, FALSE_ID)


def reference_or(mgr, f, g):
    return mgr.ite(f, TRUE_ID, g)


def reference_xor(mgr, f, g):
    return mgr.ite(f, mgr.negate(g), g)


def reference_diff(mgr, f, g):
    return mgr.ite(f, mgr.negate(g), FALSE_ID)


def random_function(mgr, rng, depth=3):
    """A random function over the manager's variables."""
    variables = mgr.variables
    node = mgr.var(rng.choice(variables)).node
    for _ in range(depth):
        other = mgr.var(rng.choice(variables)).node
        operation = rng.choice(["and", "or", "xor", "not"])
        if operation == "and":
            node = mgr.apply_and(node, other)
        elif operation == "or":
            node = mgr.apply_or(node, other)
        elif operation == "xor":
            node = mgr.apply_xor(node, other)
        else:
            node = mgr.negate(node)
    return node


class TestSpecialisedOpsMatchIte:
    def test_terminal_cases_exhaustive(self, mgr):
        a = mgr.var("a").node
        operands = [FALSE_ID, TRUE_ID, a, mgr.negate(a)]
        for f, g in itertools.product(operands, repeat=2):
            assert mgr.apply_and(f, g) == reference_and(mgr, f, g)
            assert mgr.apply_or(f, g) == reference_or(mgr, f, g)
            assert mgr.apply_xor(f, g) == reference_xor(mgr, f, g)
            assert mgr.apply_diff(f, g) == reference_diff(mgr, f, g)

    def test_randomised_functions_match_reference(self, mgr):
        rng = random.Random(7)
        for _ in range(60):
            f = random_function(mgr, rng)
            g = random_function(mgr, rng)
            assert mgr.apply_and(f, g) == reference_and(mgr, f, g)
            assert mgr.apply_or(f, g) == reference_or(mgr, f, g)
            assert mgr.apply_xor(f, g) == reference_xor(mgr, f, g)
            assert mgr.apply_diff(f, g) == reference_diff(mgr, f, g)

    def test_implies_and_iff_through_specialised_ops(self, mgr):
        rng = random.Random(11)
        for _ in range(30):
            f = random_function(mgr, rng)
            g = random_function(mgr, rng)
            assert mgr.apply_implies(f, g) == mgr.ite(f, g, TRUE_ID)
            assert mgr.apply_iff(f, g) == mgr.ite(f, g, mgr.negate(g))

    def test_commutative_ops_share_cache_entries(self, mgr):
        f = mgr.apply_and(mgr.var("a").node, mgr.var("b").node)
        g = mgr.apply_or(mgr.var("c").node, mgr.var("d").node)
        mgr.apply_and(f, g)
        entries = len(mgr._and_cache)
        mgr.apply_and(g, f)  # swapped operands: must hit, not grow
        assert len(mgr._and_cache) == entries

    def test_function_operators_route_through_specialised_ops(self, mgr):
        a, b = mgr.var("a"), mgr.var("b")
        assert (a & b).node == mgr.apply_and(a.node, b.node)
        assert (a | b).node == mgr.apply_or(a.node, b.node)
        assert (a ^ b).node == mgr.apply_xor(a.node, b.node)
        assert (a - b).node == mgr.apply_diff(a.node, b.node)


class TestCacheCounters:
    def test_lookups_and_hits_are_counted(self, mgr):
        a, b = mgr.var("a"), mgr.var("b")
        before = mgr.cache_stats()
        _ = a & b
        _ = a & b  # second time: at least one hit
        after = mgr.cache_stats()
        assert after["lookups"] > before["lookups"]
        assert after["hits"] > before["hits"]

    def test_stats_shape(self, mgr):
        stats = mgr.cache_stats()
        assert set(stats) == {"lookups", "hits", "evictions", "entries"}

    def test_clear_caches_empties_every_table(self, mgr):
        a, b, c = mgr.var("a"), mgr.var("b"), mgr.var("c")
        _ = (a & b) | c
        _ = (a ^ b) - c
        _ = (a & b).exist(["a"])
        _ = (a | c).cofactor({"a": True})
        assert mgr.cache_stats()["entries"] > 0
        mgr.clear_caches()
        assert mgr.cache_stats()["entries"] == 0


class TestGenerationalEviction:
    def test_eviction_keeps_caches_bounded(self):
        mgr = BDDManager([f"x{i}" for i in range(24)], cache_limit=64)
        rng = random.Random(3)
        for _ in range(400):
            f = random_function(mgr, rng, depth=4)
            g = random_function(mgr, rng, depth=4)
            mgr.apply_and(f, g)
            mgr.apply_or(f, g)
        assert mgr.cache_evictions > 0
        # Bounded: at most the limit plus one in-flight generation.
        assert len(mgr._and_cache) <= 64 + 1
        assert len(mgr._or_cache) <= 64 + 1

    def test_eviction_drops_oldest_half_not_everything(self):
        mgr = BDDManager([f"x{i}" for i in range(10)], cache_limit=8)
        cache = {key: key for key in range(8)}
        mgr._evict_oldest(cache)
        assert list(cache) == [4, 5, 6, 7]  # newest half survives
        assert mgr.cache_evictions == 1

    def test_results_stay_correct_across_evictions(self):
        mgr = BDDManager([f"x{i}" for i in range(12)], cache_limit=32)
        rng = random.Random(5)
        pairs = []
        for _ in range(50):
            f = random_function(mgr, rng, depth=3)
            g = random_function(mgr, rng, depth=3)
            pairs.append((f, g, mgr.apply_and(f, g)))
        # Recompute every conjunction after heavy cache churn: node
        # canonicity means the results must be identical ids.
        for f, g, expected in pairs:
            assert mgr.apply_and(f, g) == expected

    def test_intern_key_is_stable(self, mgr):
        key = frozenset({1, 2, 3})
        first = mgr.intern_key(("quant", key))
        second = mgr.intern_key(("quant", frozenset({3, 2, 1})))
        assert first == second
        assert mgr.intern_key(("cof", key)) != first
