"""Unit tests for quantification, cofactors, composition and renaming."""

import pytest

from repro.bdd import BDDManager
from repro.bdd import operators
from repro.bdd.manager import BDDOrderError


@pytest.fixture
def mgr():
    return BDDManager(["a", "b", "c", "d"])


class TestExist:
    def test_exist_removes_variable_from_support(self, mgr):
        f = mgr.var("a") & mgr.var("b")
        g = f.exist(["a"])
        assert g == mgr.var("b")
        assert "a" not in g.support()

    def test_exist_is_disjunction_of_cofactors(self, mgr):
        a = mgr.var("a")
        f = (a & mgr.var("b")) | (~a & mgr.var("c"))
        expected = f.cofactor({"a": True}) | f.cofactor({"a": False})
        assert f.exist(["a"]) == expected

    def test_exist_multiple_variables(self, mgr):
        f = (mgr.var("a") & mgr.var("b")) | (mgr.var("c") & mgr.var("d"))
        assert f.exist(["a", "b", "c", "d"]).is_true()

    def test_exist_no_variables_is_identity(self, mgr):
        f = mgr.var("a") ^ mgr.var("b")
        assert f.exist([]) == f

    def test_exist_variable_not_in_support(self, mgr):
        f = mgr.var("a")
        assert f.exist(["d"]) == f

    def test_exist_unknown_variable_raises(self, mgr):
        with pytest.raises(BDDOrderError):
            mgr.var("a").exist(["nope"])

    def test_exist_of_false_is_false(self, mgr):
        assert mgr.false.exist(["a", "b"]).is_false()


class TestForall:
    def test_forall_is_conjunction_of_cofactors(self, mgr):
        a = mgr.var("a")
        f = (a & mgr.var("b")) | (~a & mgr.var("c"))
        expected = f.cofactor({"a": True}) & f.cofactor({"a": False})
        assert f.forall(["a"]) == expected

    def test_forall_of_variable_is_false(self, mgr):
        assert mgr.var("a").forall(["a"]).is_false()

    def test_forall_of_tautology_is_true(self, mgr):
        a, b = mgr.var("a"), mgr.var("b")
        assert ((a | ~a) & (b | ~b)).forall(["a", "b"]).is_true()

    def test_duality_with_exist(self, mgr):
        f = (mgr.var("a") & mgr.var("b")) ^ mgr.var("c")
        assert f.forall(["b"]) == ~((~f).exist(["b"]))


class TestAndExist:
    def test_matches_two_step_computation(self, mgr):
        f = mgr.var("a") & (mgr.var("b") | mgr.var("c"))
        g = mgr.var("b") & mgr.var("d")
        expected = (f & g).exist(["b"])
        assert f.and_exist(g, ["b"]) == expected

    def test_empty_quantifier_set(self, mgr):
        f, g = mgr.var("a"), mgr.var("b")
        assert f.and_exist(g, []) == (f & g)

    def test_disjoint_operands_give_false(self, mgr):
        a = mgr.var("a")
        assert a.and_exist(~a, ["b"]).is_false()

    def test_with_constants(self, mgr):
        f = mgr.var("a") & mgr.var("b")
        assert f.and_exist(mgr.true, ["b"]) == mgr.var("a")
        assert f.and_exist(mgr.false, ["b"]).is_false()


class TestCofactor:
    def test_positive_cofactor(self, mgr):
        f = (mgr.var("a") & mgr.var("b")) | mgr.var("c")
        assert f.cofactor({"a": True}) == mgr.var("b") | mgr.var("c")

    def test_negative_cofactor(self, mgr):
        f = (mgr.var("a") & mgr.var("b")) | mgr.var("c")
        assert f.cofactor({"a": False}) == mgr.var("c")

    def test_cube_cofactor_order_independent(self, mgr):
        f = (mgr.var("a") & mgr.var("b")) | (mgr.var("c") & mgr.var("d"))
        step = f.cofactor({"a": True}).cofactor({"c": False})
        combined = f.cofactor({"a": True, "c": False})
        assert step == combined

    def test_cofactor_removes_variables_from_support(self, mgr):
        f = mgr.var("a") ^ mgr.var("b")
        g = f.cofactor({"a": True})
        assert g.support() == ["b"]

    def test_shannon_expansion(self, mgr):
        f = (mgr.var("a") & mgr.var("b")) | (mgr.var("c") ^ mgr.var("d"))
        a = mgr.var("a")
        rebuilt = (a & f.cofactor({"a": True})) | (~a & f.cofactor({"a": False}))
        assert rebuilt == f

    def test_empty_cofactor_is_identity(self, mgr):
        f = mgr.var("a") | mgr.var("d")
        assert f.cofactor({}) == f

    def test_restrict_alias(self, mgr):
        f = mgr.var("a") & mgr.var("b")
        assert operators.restrict(f, {"a": True}) == f.cofactor({"a": True})


class TestCompose:
    def test_compose_single_variable(self, mgr):
        f = mgr.var("a") & mgr.var("b")
        g = mgr.var("c") | mgr.var("d")
        composed = f.compose({"a": g})
        assert composed == (mgr.var("c") | mgr.var("d")) & mgr.var("b")

    def test_compose_is_simultaneous(self, mgr):
        # f = a XOR b; swap a and b simultaneously: result unchanged.
        f = mgr.var("a") ^ mgr.var("b")
        swapped = f.compose({"a": mgr.var("b"), "b": mgr.var("a")})
        assert swapped == f

    def test_compose_swap_asymmetric(self, mgr):
        f = mgr.var("a") & ~mgr.var("b")
        swapped = f.compose({"a": mgr.var("b"), "b": mgr.var("a")})
        assert swapped == mgr.var("b") & ~mgr.var("a")

    def test_compose_with_constant(self, mgr):
        f = mgr.var("a") & mgr.var("b")
        assert f.compose({"a": mgr.true}) == mgr.var("b")
        assert f.compose({"a": mgr.false}).is_false()

    def test_compose_empty_mapping(self, mgr):
        f = mgr.var("a")
        assert f.compose({}) == f

    def test_compose_cross_manager_rejected(self, mgr):
        other = BDDManager(["a", "b"])
        with pytest.raises(ValueError):
            mgr.var("a").compose({"a": other.var("b")})


class TestRename:
    def test_rename_variable(self, mgr):
        f = mgr.var("a") & mgr.var("b")
        renamed = f.rename({"a": "c"})
        assert renamed == mgr.var("c") & mgr.var("b")

    def test_rename_to_unknown_variable_raises(self, mgr):
        with pytest.raises(BDDOrderError):
            mgr.var("a").rename({"a": "brand_new"})

    def test_rename_swap(self, mgr):
        f = mgr.var("a") & ~mgr.var("b")
        swapped = f.rename({"a": "b", "b": "a"})
        assert swapped == mgr.var("b") & ~mgr.var("a")
