"""Tests for variable-ordering heuristics and reorder-by-rebuild."""

import pytest

from repro.bdd import BDDManager, force_ordering, reorder_by_rebuild
from repro.bdd.ordering import copy_function, interleaved_ordering, total_size


class TestForceOrdering:
    def test_result_is_permutation(self):
        variables = ["a", "b", "c", "d", "e"]
        order = force_ordering(variables, [["a", "c"], ["b", "d"]])
        assert sorted(order) == sorted(variables)

    def test_no_groups_returns_input_order(self):
        variables = ["x", "y", "z"]
        assert force_ordering(variables, []) == variables

    def test_related_variables_become_adjacent(self):
        # Two independent pairs placed far apart in the initial order.
        variables = ["a0", "b0", "c0", "a1", "b1", "c1"]
        groups = [["a0", "a1"], ["b0", "b1"], ["c0", "c1"]]
        order = force_ordering(variables, groups)
        for prefix in ("a", "b", "c"):
            positions = [order.index(f"{prefix}0"), order.index(f"{prefix}1")]
            assert abs(positions[0] - positions[1]) == 1

    def test_unknown_group_members_ignored(self):
        order = force_ordering(["a", "b"], [["a", "ghost", "b"]])
        assert sorted(order) == ["a", "b"]

    def test_deterministic(self):
        variables = [f"v{i}" for i in range(10)]
        groups = [[f"v{i}", f"v{(i * 3) % 10}"] for i in range(10)]
        assert force_ordering(variables, groups) == force_ordering(variables, groups)


class TestInterleavedOrdering:
    def test_round_robin(self):
        order = interleaved_ordering([["a0", "a1"], ["b0", "b1"]])
        assert order == ["a0", "b0", "a1", "b1"]

    def test_uneven_chains(self):
        order = interleaved_ordering([["a0", "a1", "a2"], ["b0"]])
        assert order == ["a0", "b0", "a1", "a2"]

    def test_duplicates_keep_first_position(self):
        order = interleaved_ordering([["x", "y"], ["y", "z"]])
        assert order == ["x", "y", "z"]

    def test_empty(self):
        assert interleaved_ordering([]) == []


class TestReorderByRebuild:
    def test_function_semantics_preserved(self):
        mgr = BDDManager(["a", "b", "c", "d"])
        f = (mgr.var("a") & mgr.var("c")) | (mgr.var("b") & mgr.var("d"))
        new_mgr, (g,) = reorder_by_rebuild([f], ["a", "c", "b", "d"])
        assert new_mgr.variables == ["a", "c", "b", "d"]
        for model in f.iter_models():
            assert g.evaluate(model)
        assert f.sat_count() == g.sat_count()

    def test_good_order_shrinks_interleaved_conjunction(self):
        # f = (a0 & b0) | (a1 & b1) | ... is exponentially sensitive to order.
        n = 6
        bad_order = [f"a{i}" for i in range(n)] + [f"b{i}" for i in range(n)]
        mgr = BDDManager(bad_order)
        f = mgr.false
        for i in range(n):
            f = f | (mgr.var(f"a{i}") & mgr.var(f"b{i}"))
        good_order = []
        for i in range(n):
            good_order.extend([f"a{i}", f"b{i}"])
        _, (g,) = reorder_by_rebuild([f], good_order)
        assert g.size() < f.size()

    def test_missing_variables_appended(self):
        mgr = BDDManager(["a", "b", "c"])
        f = mgr.var("a")
        new_mgr, _ = reorder_by_rebuild([f], ["a"])
        assert set(new_mgr.variables) == {"a", "b", "c"}

    def test_empty_function_list(self):
        mgr, functions = reorder_by_rebuild([], ["x", "y"])
        assert functions == []
        assert mgr.variables == ["x", "y"]

    def test_mixed_managers_rejected(self):
        mgr1 = BDDManager(["a"])
        mgr2 = BDDManager(["a"])
        with pytest.raises(ValueError):
            reorder_by_rebuild([mgr1.var("a"), mgr2.var("a")], ["a"])


class TestCopyFunction:
    def test_copy_preserves_models(self):
        source = BDDManager(["p", "q", "r"])
        f = (source.var("p") | source.var("q")) & ~source.var("r")
        target = BDDManager(["r", "q", "p"])
        g = copy_function(target, f)
        assert sorted(map(sorted, (m.items() for m in f.iter_models()))) == \
            sorted(map(sorted, (m.items() for m in g.iter_models())))

    def test_copy_constants(self):
        source = BDDManager(["x"])
        target = BDDManager(["x"])
        assert copy_function(target, source.true).is_true()
        assert copy_function(target, source.false).is_false()


class TestTotalSize:
    def test_empty(self):
        assert total_size([]) == 0

    def test_sharing_counted_once(self):
        mgr = BDDManager(["a", "b"])
        f = mgr.var("a") & mgr.var("b")
        g = mgr.var("a") & mgr.var("b")
        assert total_size([f, g]) == f.size()

    def test_union_of_distinct_functions(self):
        mgr = BDDManager(["a", "b"])
        f = mgr.var("a")
        g = mgr.var("b")
        assert total_size([f, g]) == 4  # two internal nodes + two terminals
