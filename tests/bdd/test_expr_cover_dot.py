"""Tests for the expression parser, ISOP cover extraction and DOT export."""

import pytest

from repro.bdd import BDDManager, parse_expression
from repro.bdd.cover import cover_function, cube_to_string, isop, to_expression
from repro.bdd.dot import to_dot
from repro.bdd.expr import ExpressionError
from repro.bdd.manager import BDDOrderError


@pytest.fixture
def mgr():
    return BDDManager(["a", "b", "c", "d"])


class TestParser:
    def test_single_variable(self, mgr):
        assert parse_expression(mgr, "a") == mgr.var("a")

    def test_constants(self, mgr):
        assert parse_expression(mgr, "1").is_true()
        assert parse_expression(mgr, "0").is_false()

    def test_negation_styles(self, mgr):
        a = mgr.var("a")
        assert parse_expression(mgr, "!a") == ~a
        assert parse_expression(mgr, "~a") == ~a
        assert parse_expression(mgr, "a'") == ~a

    def test_and_or(self, mgr):
        expected = (mgr.var("a") & mgr.var("b")) | mgr.var("c")
        assert parse_expression(mgr, "a & b | c") == expected
        assert parse_expression(mgr, "a*b + c") == expected

    def test_juxtaposition_is_conjunction(self, mgr):
        expected = mgr.var("a") & ~mgr.var("b") & mgr.var("c")
        assert parse_expression(mgr, "a b' c") == expected

    def test_precedence_not_over_and_over_or(self, mgr):
        expected = (~mgr.var("a") & mgr.var("b")) | mgr.var("c")
        assert parse_expression(mgr, "!a & b | c") == expected

    def test_xor(self, mgr):
        assert parse_expression(mgr, "a ^ b") == mgr.var("a") ^ mgr.var("b")

    def test_implication_right_associative(self, mgr):
        a, b, c = mgr.var("a"), mgr.var("b"), mgr.var("c")
        assert parse_expression(mgr, "a -> b -> c") == (a >> (b >> c))

    def test_iff(self, mgr):
        a, b = mgr.var("a"), mgr.var("b")
        assert parse_expression(mgr, "a <-> b") == a.iff(b)

    def test_parentheses(self, mgr):
        expected = mgr.var("a") & (mgr.var("b") | mgr.var("c"))
        assert parse_expression(mgr, "a & (b | c)") == expected

    def test_parenthesised_postfix_negation(self, mgr):
        expected = ~(mgr.var("a") & mgr.var("b"))
        assert parse_expression(mgr, "(a & b)'") == expected

    def test_unknown_variable_raises_without_declare(self, mgr):
        with pytest.raises(BDDOrderError):
            parse_expression(mgr, "zz & a")

    def test_declare_on_the_fly(self, mgr):
        f = parse_expression(mgr, "new_sig & a", declare=True)
        assert "new_sig" in mgr.variables
        assert f == mgr.var("new_sig") & mgr.var("a")

    def test_empty_expression_raises(self, mgr):
        with pytest.raises(ExpressionError):
            parse_expression(mgr, "   ")

    def test_unbalanced_parenthesis_raises(self, mgr):
        with pytest.raises(ExpressionError):
            parse_expression(mgr, "(a & b")

    def test_trailing_garbage_raises(self, mgr):
        with pytest.raises(ExpressionError):
            parse_expression(mgr, "a & b )")


class TestIsop:
    def test_cover_of_false_is_empty(self, mgr):
        assert isop(mgr.false) == []

    def test_cover_of_true_is_single_empty_cube(self, mgr):
        assert isop(mgr.true) == [{}]

    def test_cover_equals_function(self, mgr):
        f = (mgr.var("a") & ~mgr.var("b")) | (mgr.var("c") & mgr.var("d"))
        cubes = isop(f)
        assert cover_function(f, cubes) == f

    def test_cover_of_xor(self, mgr):
        f = mgr.var("a") ^ mgr.var("b")
        cubes = isop(f)
        assert len(cubes) == 2
        assert cover_function(f, cubes) == f

    def test_cover_with_dont_cares_between_bounds(self, mgr):
        lower = mgr.var("a") & mgr.var("b")
        upper = mgr.var("a")
        cubes = isop(lower, upper)
        rebuilt = cover_function(lower, cubes)
        assert lower <= rebuilt
        assert rebuilt <= upper

    def test_invalid_interval_raises(self, mgr):
        with pytest.raises(ValueError):
            isop(mgr.var("a"), mgr.var("b"))

    def test_cover_is_irredundant(self, mgr):
        f = (mgr.var("a") & mgr.var("b")) | (~mgr.var("a") & mgr.var("c"))
        cubes = isop(f)
        for index in range(len(cubes)):
            remaining = [c for i, c in enumerate(cubes) if i != index]
            assert cover_function(f, remaining) != f


class TestExpressionOutput:
    def test_constants(self, mgr):
        assert to_expression(mgr.true) == "1"
        assert to_expression(mgr.false) == "0"

    def test_cube_to_string(self):
        assert cube_to_string({"a": True, "b": False}) == "a b'"
        assert cube_to_string({}) == "1"

    def test_roundtrip_through_parser(self, mgr):
        f = (mgr.var("a") & ~mgr.var("b")) | (mgr.var("c") ^ mgr.var("d"))
        text = to_expression(f)
        assert parse_expression(mgr, text) == f


class TestDot:
    def test_dot_contains_nodes_and_edges(self, mgr):
        f = mgr.var("a") & mgr.var("b")
        text = to_dot(f)
        assert text.startswith("digraph")
        assert 'label="a"' in text
        assert 'label="b"' in text
        assert "style=dashed" in text

    def test_dot_of_constant(self, mgr):
        text = to_dot(mgr.true)
        assert 'label="1"' in text
