"""Unit tests for the BDD manager: node canonicity, ITE, constants, GC."""

import pytest

from repro.bdd import BDDManager, BDDOrderError


@pytest.fixture
def mgr():
    return BDDManager(["a", "b", "c", "d"])


class TestVariables:
    def test_variables_keep_declaration_order(self, mgr):
        assert mgr.variables == ["a", "b", "c", "d"]

    def test_num_vars(self, mgr):
        assert mgr.num_vars == 4

    def test_add_var_appends(self, mgr):
        mgr.add_var("e")
        assert mgr.variables[-1] == "e"
        assert mgr.level_of("e") == 4

    def test_duplicate_declaration_rejected(self, mgr):
        with pytest.raises(BDDOrderError):
            mgr.add_var("a")

    def test_unknown_variable_rejected(self, mgr):
        with pytest.raises(BDDOrderError):
            mgr.var("zz")

    def test_ensure_var_declares_once(self):
        mgr = BDDManager()
        first = mgr.ensure_var("x")
        second = mgr.ensure_var("x")
        assert first == second
        assert mgr.num_vars == 1

    def test_level_roundtrip(self, mgr):
        for name in mgr.variables:
            assert mgr.var_at_level(mgr.level_of(name)) == name


class TestConstants:
    def test_true_false_distinct(self, mgr):
        assert mgr.true != mgr.false

    def test_true_is_true(self, mgr):
        assert mgr.true.is_true()
        assert not mgr.true.is_false()

    def test_false_is_false(self, mgr):
        assert mgr.false.is_false()
        assert mgr.false.is_constant()

    def test_variable_is_not_constant(self, mgr):
        assert not mgr.var("a").is_constant()

    def test_bool_conversion_raises(self, mgr):
        with pytest.raises(TypeError):
            bool(mgr.var("a"))


class TestCanonicity:
    def test_same_variable_same_node(self, mgr):
        assert mgr.var("a") == mgr.var("a")

    def test_negative_literal_matches_invert(self, mgr):
        assert mgr.nvar("b") == ~mgr.var("b")

    def test_redundant_node_collapses(self, mgr):
        a = mgr.var("a")
        f = (a & mgr.true) | (a & mgr.false)
        assert f == a

    def test_structural_sharing(self, mgr):
        a, b = mgr.var("a"), mgr.var("b")
        f = a & b
        g = a & b
        assert f.node == g.node

    def test_double_negation(self, mgr):
        f = mgr.var("a") ^ mgr.var("c")
        assert ~~f == f

    def test_tautology_collapses_to_true(self, mgr):
        a = mgr.var("a")
        assert (a | ~a).is_true()

    def test_contradiction_collapses_to_false(self, mgr):
        a = mgr.var("a")
        assert (a & ~a).is_false()


class TestIte:
    def test_ite_terminal_cases(self, mgr):
        a, b = mgr.var("a"), mgr.var("b")
        assert mgr.true.ite(a, b) == a
        assert mgr.false.ite(a, b) == b
        assert a.ite(mgr.true, mgr.false) == a

    def test_ite_equal_branches(self, mgr):
        a, b = mgr.var("a"), mgr.var("b")
        assert a.ite(b, b) == b

    def test_ite_matches_formula(self, mgr):
        a, b, c = mgr.var("a"), mgr.var("b"), mgr.var("c")
        assert a.ite(b, c) == (a & b) | (~a & c)

    def test_xor_via_ite(self, mgr):
        a, b = mgr.var("a"), mgr.var("b")
        assert (a ^ b) == (a & ~b) | (~a & b)

    def test_implication(self, mgr):
        a, b = mgr.var("a"), mgr.var("b")
        assert (a >> b) == (~a | b)

    def test_iff(self, mgr):
        a, b = mgr.var("a"), mgr.var("b")
        assert a.iff(b) == ~(a ^ b)

    def test_difference(self, mgr):
        a, b = mgr.var("a"), mgr.var("b")
        assert (a - b) == (a & ~b)


class TestCube:
    def test_empty_cube_is_true(self, mgr):
        assert mgr.cube({}).is_true()

    def test_cube_matches_conjunction(self, mgr):
        cube = mgr.cube({"a": True, "c": False, "d": True})
        expected = mgr.var("a") & ~mgr.var("c") & mgr.var("d")
        assert cube == expected

    def test_from_assignment_with_care_vars(self, mgr):
        assignment = {"a": True, "b": False, "c": True, "d": False}
        f = mgr.from_assignment(assignment, care_vars=["a", "b"])
        assert f == mgr.var("a") & ~mgr.var("b")

    def test_cube_size_is_linear(self, mgr):
        cube = mgr.cube({"a": True, "b": True, "c": True, "d": True})
        # 4 internal nodes + 2 terminals
        assert cube.size() == 6


class TestComparisons:
    def test_le_is_implication_check(self, mgr):
        a, b = mgr.var("a"), mgr.var("b")
        assert (a & b) <= a
        assert not (a <= (a & b))

    def test_lt_is_strict(self, mgr):
        a, b = mgr.var("a"), mgr.var("b")
        assert (a & b) < a
        assert not (a < a)

    def test_disjoint(self, mgr):
        a, b = mgr.var("a"), mgr.var("b")
        assert (a & b).disjoint(a & ~b)
        assert not a.disjoint(a & b)

    def test_cross_manager_mix_rejected(self, mgr):
        other = BDDManager(["a"])
        with pytest.raises(ValueError):
            mgr.var("a") & other.var("a")

    def test_non_function_operand_rejected(self, mgr):
        with pytest.raises(TypeError):
            mgr.var("a") & 1  # type: ignore[operator]


class TestGarbageCollection:
    def test_gc_reclaims_dead_nodes(self):
        mgr = BDDManager([f"x{i}" for i in range(12)])
        keep = mgr.var("x0") & mgr.var("x1")
        # Build and drop a large parity function.
        f = mgr.false
        for name in mgr.variables:
            f = f ^ mgr.var(name)
        before = mgr.num_nodes
        del f
        reclaimed = mgr.collect_garbage()
        assert reclaimed > 0
        assert mgr.num_nodes < before
        # The kept function must survive and stay correct.
        assert keep == mgr.var("x0") & mgr.var("x1")

    def test_gc_preserves_semantics_of_roots(self):
        mgr = BDDManager(["a", "b", "c"])
        f = (mgr.var("a") | mgr.var("b")) & ~mgr.var("c")
        _temporary = mgr.var("a") ^ mgr.var("b") ^ mgr.var("c")
        del _temporary
        mgr.collect_garbage()
        assert f.evaluate({"a": True, "b": False, "c": False})
        assert not f.evaluate({"a": True, "b": False, "c": True})

    def test_gc_noop_when_everything_alive(self):
        mgr = BDDManager(["a", "b"])
        a, b = mgr.var("a"), mgr.var("b")
        functions = [a, b, a & b, a | b]
        # Every node created so far is reachable from a live handle.
        reclaimed = mgr.collect_garbage()
        assert reclaimed == 0
        assert functions[2] == a & b


class TestSizes:
    def test_constant_size(self, mgr):
        assert mgr.true.size() == 1
        assert mgr.false.size() == 1

    def test_variable_size(self, mgr):
        assert mgr.var("a").size() == 3

    def test_size_counts_shared_nodes_once(self, mgr):
        a, b = mgr.var("a"), mgr.var("b")
        f = (a & b) | (~a & b)  # collapses to b
        assert f == b
        assert f.size() == 3
