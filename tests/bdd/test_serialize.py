"""Tests for BDD serialisation (dump/load round trips)."""


import pytest

from repro.bdd import BDDManager
from repro.bdd.manager import BDDError
from repro.bdd.serialize import dump, dumps, load, loads


@pytest.fixture
def mgr():
    return BDDManager(["a", "b", "c", "d"])


class TestRoundTrip:
    def test_single_function(self, mgr):
        f = (mgr.var("a") & mgr.var("b")) | ~mgr.var("c")
        new_mgr, (g,) = loads(dumps([f]))
        assert new_mgr.variables == mgr.variables
        for model in f.iter_models():
            assert g.evaluate(model)
        assert f.sat_count() == g.sat_count()

    def test_multiple_functions_share_structure(self, mgr):
        f = mgr.var("a") & mgr.var("b")
        g = f | mgr.var("c")
        text = dumps([f, g])
        _, (f2, g2) = loads(text)
        assert f2 <= g2
        assert f2.sat_count() == f.sat_count()
        assert g2.sat_count() == g.sat_count()

    def test_constants(self, mgr):
        _, (t, f) = loads(dumps([mgr.true, mgr.false]))
        assert t.is_true() and f.is_false()

    def test_load_into_existing_manager(self, mgr):
        f = mgr.var("a") ^ mgr.var("d")
        other = BDDManager(["d", "a", "x"])  # different order, extra variable
        _, (g,) = loads(dumps([f]), manager=other)
        for model in f.iter_models(care_vars=["a", "d"]):
            assert g.evaluate(model)

    def test_file_round_trip(self, mgr, tmp_path):
        f = mgr.var("a") | (mgr.var("b") & mgr.var("c"))
        path = tmp_path / "f.bdd"
        with open(path, "w", encoding="utf-8") as handle:
            dump([f], handle)
        with open(path, encoding="utf-8") as handle:
            _, (g,) = load(handle)
        assert g.sat_count() == f.sat_count()

    def test_reachable_set_round_trip(self):
        # End-to-end: persist the reachable set of an STG and reload it.
        from repro.core.encoding import SymbolicEncoding
        from repro.core.traversal import symbolic_traversal
        from repro.stg.generators import muller_pipeline

        encoding = SymbolicEncoding(muller_pipeline(4))
        reached, stats = symbolic_traversal(encoding)
        new_mgr, (loaded,) = loads(dumps([reached]))
        care = [v for v in new_mgr.variables]
        assert loaded.sat_count(care_vars=care) == stats.num_states


class TestErrors:
    def test_empty_function_list_rejected(self):
        with pytest.raises(BDDError):
            dumps([])

    def test_mixed_managers_rejected(self, mgr):
        other = BDDManager(["a"])
        with pytest.raises(BDDError):
            dumps([mgr.var("a"), other.var("a")])

    def test_bad_header_rejected(self):
        with pytest.raises(BDDError):
            loads("not a bdd file\n")

    def test_missing_vars_line_rejected(self):
        with pytest.raises(BDDError):
            loads("bdd-serialized 1\nroots 1\nroot 1\n")

    def test_undefined_root_rejected(self, mgr):
        text = "bdd-serialized 1\nvars a\nroots 1\nroot 99\n"
        with pytest.raises(BDDError):
            loads(text)

    def test_unknown_child_rejected(self):
        text = ("bdd-serialized 1\nvars a\nroots 1\n"
                "node 5 a 7 1\nroot 5\n")
        with pytest.raises(BDDError):
            loads(text)
