"""Serialisation hardening: header rejection and corpus-scale round trips.

The format must fail *loudly and clearly* on anything that is not a
well-formed ``bdd-serialized 1`` stream (unknown headers, future format
versions, truncated node lines) -- a confusing downstream parse failure
inside a cache load is how corrupt stores silently eat sweeps.  The
round-trip tests run on real corpus reachable sets: loading must rebuild
the exact canonical structure, preserving sharing and node counts.
"""

import pytest

from repro import corpus
from repro.bdd import BDDError
from repro.bdd import serialize
from repro.core.pipeline import VerificationPipeline
from repro.stg.parser import parse_g


class TestHeaderRejection:
    def test_empty_stream(self):
        with pytest.raises(BDDError, match="empty stream"):
            serialize.loads("")

    def test_unrelated_header(self):
        with pytest.raises(BDDError, match="not a bdd-serialized stream"):
            serialize.loads("hello world\n")

    def test_future_format_version(self):
        with pytest.raises(BDDError,
                           match="unsupported bdd-serialized format "
                                 "version '99'"):
            serialize.loads("bdd-serialized 99\nvars a\nroots 1\nroot 1\n")

    def test_json_garbage_is_not_a_parse_crash(self):
        with pytest.raises(BDDError):
            serialize.loads('{"vars": ["a"]}\n')

    def test_malformed_node_ids_raise_bdd_error(self):
        text = ("bdd-serialized 1\nvars a\nroots 1\n"
                "node two a 0 1\nroot 2\n")
        with pytest.raises(BDDError, match="malformed node line"):
            serialize.loads(text)

    def test_malformed_root_line_raises_bdd_error(self):
        text = ("bdd-serialized 1\nvars a\nroots 1\n"
                "node 2 a 0 1\nroot x\n")
        with pytest.raises(BDDError, match="malformed root line"):
            serialize.loads(text)

    def test_unknown_child_reference(self):
        text = ("bdd-serialized 1\nvars a\nroots 1\n"
                "node 5 a 0 9\nroot 5\n")
        with pytest.raises(BDDError, match="unknown child"):
            serialize.loads(text)


def reachable_of(name: str):
    entry = corpus.entry(name)
    stg = parse_g(entry.g_text, name=name)
    pipeline = VerificationPipeline(stg)
    return pipeline, pipeline.reached


@pytest.mark.parametrize("name", ["vme_read", "master_read_2",
                                  "muller_pipeline_4", "mutex3"])
class TestCorpusRoundTrips:
    def test_round_trip_preserves_semantics_and_node_count(self, name):
        pipeline, reached = reachable_of(name)
        text = serialize.dumps([reached])
        manager, roots = serialize.loads(text)
        assert len(roots) == 1
        loaded = roots[0]
        # Same variable order -> identical canonical structure.
        assert manager.variables == pipeline.encoding.manager.variables
        assert loaded.size() == reached.size()
        care = pipeline.encoding.all_variables
        assert loaded.sat_count(care) == reached.sat_count(care)

    def test_round_trip_into_existing_manager_is_identity(self, name):
        pipeline, reached = reachable_of(name)
        text = serialize.dumps([reached])
        _, roots = serialize.loads(text,
                                   manager=pipeline.encoding.manager)
        # Canonicity in one manager: the loaded root IS the original.
        assert roots[0].node == reached.node


class TestSharingPreserved:
    def test_shared_structure_serialises_once(self):
        pipeline, reached = reachable_of("master_read_2")
        encoding = pipeline.encoding
        # Two overlapping slices of the reachable set share most nodes.
        variable = encoding.all_variables[0]
        part = reached.cofactor({variable: True})
        text = serialize.dumps([reached, part])
        node_lines = [line for line in text.splitlines()
                      if line.startswith("node ")]
        # Sharing: emitting both costs less than the sum of their sizes.
        internal = (reached.size() - 2) + (part.size() - 2)
        assert len(node_lines) < internal
        manager, roots = serialize.loads(text)
        shared = (set(manager.descendants(roots[0].node))
                  | set(manager.descendants(roots[1].node)))
        assert len(shared) == len(node_lines) + 2
        care = encoding.all_variables
        assert roots[0].sat_count(care) == reached.sat_count(care)
        assert roots[1].sat_count(care) == part.sat_count(care)
