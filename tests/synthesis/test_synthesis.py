"""Tests for next-state function derivation, gate covers and verification."""

import pytest

from repro.core.encoding import SymbolicEncoding
from repro.core.image import SymbolicImage
from repro.core.traversal import symbolic_traversal
from repro.sg import build_state_graph
from repro.stg.generators import (
    csc_resolved_example,
    csc_violation_example,
    handshake,
    master_read,
    muller_pipeline,
    mutex_element,
)
from repro.synthesis import (
    derive_next_state_functions,
    synthesize_complex_gates,
    synthesize_generalized_c_elements,
    verify_implementation,
)
from repro.synthesis.functions import SynthesisError, derive_next_state_function


def setup(stg):
    encoding = SymbolicEncoding(stg)
    image = SymbolicImage(encoding)
    reached, _ = symbolic_traversal(encoding, image=image)
    return encoding, image, reached


class TestNextStateFunctions:
    def test_handshake_acknowledgement_function(self):
        stg = handshake()
        encoding, image, reached = setup(stg)
        functions = derive_next_state_functions(encoding, reached, image.charfun)
        assert set(functions) == {"a"}
        function = functions["a"]
        assert function.is_well_defined
        # For the 4-phase handshake the acknowledgement simply follows the
        # request: on-set = {r=1}, off-set = {r=0} (over reachable codes).
        r = encoding.signal("r")
        assert function.on_set == r
        assert function.off_set == ~r

    def test_value_at_specific_codes(self):
        stg = handshake()
        encoding, image, reached = setup(stg)
        function = derive_next_state_functions(
            encoding, reached, image.charfun)["a"]
        assert function.value_at({"r": True, "a": False}, encoding) is True
        assert function.value_at({"r": False, "a": True}, encoding) is False

    def test_unreachable_codes_are_dont_care(self):
        stg = muller_pipeline(2)
        encoding, image, reached = setup(stg)
        functions = derive_next_state_functions(encoding, reached, image.charfun)
        reachable_codes = reached.exist(encoding.place_variables)
        for function in functions.values():
            assert function.dont_care == ~reachable_codes

    def test_input_signal_rejected(self):
        stg = handshake()
        encoding, image, reached = setup(stg)
        with pytest.raises(SynthesisError):
            derive_next_state_function(encoding, reached, image.charfun, "r")

    def test_csc_violation_rejected(self):
        stg = csc_violation_example()
        encoding, image, reached = setup(stg)
        with pytest.raises(SynthesisError):
            derive_next_state_functions(encoding, reached, image.charfun)

    def test_csc_violation_tolerated_without_requirement(self):
        stg = csc_violation_example()
        encoding, image, reached = setup(stg)
        functions = derive_next_state_functions(
            encoding, reached, image.charfun, require_csc=False)
        assert not functions["b"].is_well_defined

    def test_no_noninput_signals_rejected(self):
        from repro.stg import STG, SignalKind

        stg = STG("inputs_only")
        stg.add_signal("a", SignalKind.INPUT, initial_value=False)
        stg.connect("a+", "a-")
        stg.connect("a-", "a+", tokens=1)
        encoding, image, reached = setup(stg)
        with pytest.raises(SynthesisError):
            derive_next_state_functions(encoding, reached, image.charfun)


class TestComplexGates:
    @pytest.mark.parametrize("factory", [
        handshake, mutex_element, csc_resolved_example,
        lambda: muller_pipeline(3), lambda: master_read(2),
    ], ids=["handshake", "mutex", "csc_resolved", "pipeline3", "master_read2"])
    def test_gates_cover_on_set_and_avoid_off_set(self, factory):
        stg = factory()
        encoding, image, reached = setup(stg)
        functions = derive_next_state_functions(encoding, reached, image.charfun)
        gates = synthesize_complex_gates(encoding, reached, image.charfun)
        for signal, gate in gates.items():
            function = functions[signal]
            assert function.on_set <= gate.cover_function
            assert gate.cover_function.disjoint(function.off_set)
            assert gate.equation not in ("", "0") or function.on_set.is_false()

    def test_handshake_equation_is_request_buffer(self):
        stg = handshake()
        encoding, image, reached = setup(stg)
        gates = synthesize_complex_gates(encoding, reached, image.charfun)
        assert gates["a"].equation == "r"

    def test_muller_pipeline_gates_are_c_elements(self):
        # Stage i of the pipeline is a Muller C-element of its neighbours:
        # c_i = c_{i-1} c_{i+1}' + c_i (c_{i-1} + c_{i+1}')
        stg = muller_pipeline(2)
        encoding, image, reached = setup(stg)
        gates = synthesize_complex_gates(encoding, reached, image.charfun)
        c0 = encoding.signal("c0")
        c1 = encoding.signal("c1")
        c2 = encoding.signal("c2")
        expected_c1 = (c0 & ~c2) | (c1 & (c0 | ~c2))
        reachable_codes = reached.exist(encoding.place_variables)
        # Compare on the reachable codes (off the care set anything goes).
        assert (gates["c1"].cover_function & reachable_codes) == \
            (expected_c1 & reachable_codes)

    def test_gc_elements_cover_excitation_regions(self):
        stg = mutex_element()
        encoding, image, reached = setup(stg)
        functions = derive_next_state_functions(encoding, reached, image.charfun)
        gc = synthesize_generalized_c_elements(encoding, reached, image.charfun)
        for signal, element in gc.items():
            function = functions[signal]
            assert function.excitation_on <= element.set_function
            assert function.excitation_off <= element.reset_function
            assert element.set_function.disjoint(function.off_set)
            assert element.reset_function.disjoint(function.on_set)

    def test_gate_string_rendering(self):
        stg = handshake()
        encoding, image, reached = setup(stg)
        gates = synthesize_complex_gates(encoding, reached, image.charfun)
        assert str(gates["a"]) == "a = r"
        gc = synthesize_generalized_c_elements(encoding, reached, image.charfun)
        assert "set =" in str(gc["a"])


class TestVerification:
    @pytest.mark.parametrize("factory", [
        handshake, mutex_element, csc_resolved_example,
        lambda: muller_pipeline(3), lambda: master_read(2),
    ], ids=["handshake", "mutex", "csc_resolved", "pipeline3", "master_read2"])
    def test_derived_gates_verify_against_explicit_graph(self, factory):
        stg = factory()
        encoding, image, reached = setup(stg)
        functions = derive_next_state_functions(encoding, reached, image.charfun)
        gates = synthesize_complex_gates(encoding, reached, image.charfun)
        graph = build_state_graph(stg).graph
        result = verify_implementation(encoding, graph, gates, functions)
        assert result.correct, str(result)

    def test_wrong_gate_is_rejected(self):
        stg = handshake()
        encoding, image, reached = setup(stg)
        functions = derive_next_state_functions(encoding, reached, image.charfun)
        gates = synthesize_complex_gates(encoding, reached, image.charfun)
        # Sabotage: invert the acknowledgement gate.
        gates["a"].cover_function = ~gates["a"].cover_function
        graph = build_state_graph(stg).graph
        result = verify_implementation(encoding, graph, gates, functions)
        assert not result.correct
        assert result.simulation_failures
