"""Tests for netlist / Verilog emission of the derived logic."""


from repro.core.encoding import SymbolicEncoding
from repro.core.image import SymbolicImage
from repro.core.traversal import symbolic_traversal
from repro.stg.generators import handshake, muller_pipeline, mutex_element
from repro.synthesis import (
    synthesize_complex_gates,
    synthesize_generalized_c_elements,
)
from repro.synthesis.netlist import (
    complex_gate_netlist,
    gc_netlist,
    to_verilog,
    to_verilog_gc,
)


def build(stg):
    encoding = SymbolicEncoding(stg)
    image = SymbolicImage(encoding)
    reached, _ = symbolic_traversal(encoding, image=image)
    gates = synthesize_complex_gates(encoding, reached, image.charfun)
    elements = synthesize_generalized_c_elements(encoding, reached, image.charfun)
    return gates, elements


class TestTextNetlists:
    def test_complex_gate_netlist_lists_all_outputs(self):
        stg = mutex_element()
        gates, _ = build(stg)
        text = complex_gate_netlist(stg, gates)
        for signal in stg.outputs:
            assert f"{signal} = " in text
        assert text.startswith("# complex-gate netlist")
        assert "# inputs : r1 r2" in text
        assert "# outputs: g1 g2" in text

    def test_handshake_equation(self):
        stg = handshake()
        gates, _ = build(stg)
        assert "a = r" in complex_gate_netlist(stg, gates)

    def test_gc_netlist_has_set_and_reset(self):
        stg = mutex_element()
        _, elements = build(stg)
        text = gc_netlist(stg, elements)
        for signal in stg.outputs:
            assert f"{signal}.set" in text
            assert f"{signal}.reset" in text


class TestVerilog:
    def test_module_structure(self):
        stg = handshake()
        gates, _ = build(stg)
        text = to_verilog(stg, gates)
        assert text.startswith("// Derived from STG")
        assert "module " in text and text.rstrip().endswith("endmodule")
        assert "input  r;" in text
        assert "output a;" in text
        assert "assign a = (r);" in text

    def test_pipeline_gates_reference_neighbours(self):
        stg = muller_pipeline(2)
        gates, _ = build(stg)
        text = to_verilog(stg, gates)
        assert "assign c1 = " in text
        assert "c0" in text and "c2" in text

    def test_gc_verilog_structure(self):
        stg = mutex_element()
        _, elements = build(stg)
        text = to_verilog_gc(stg, elements)
        assert "output reg g1;" in text
        assert "always @*" in text
        assert "g1 = 1'b1;" in text
        assert text.rstrip().endswith("endmodule")

    def test_identifier_sanitisation(self):
        stg = handshake()
        stg.name = "weird-name.with:chars"
        gates, _ = build(stg)
        text = to_verilog(stg, gates)
        assert "module weird_name_with_chars (" in text

    def test_custom_module_name(self):
        stg = handshake()
        gates, _ = build(stg)
        assert "module my_ctrl (" in to_verilog(stg, gates, module_name="my_ctrl")
