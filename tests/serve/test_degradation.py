"""Graceful degradation under load shedding: 503 refusals that carry
``Retry-After`` and a machine-readable ``retryable`` flag, and the
opt-in bounded client retry that consumes them.

The drain path in :meth:`ServeApp.request_shutdown` also closes the
listener, so these tests flip ``_draining`` directly -- that is the
window (signal received, listener still up) the refusal contract is
about.
"""

import json
import threading
import time
from http.client import HTTPConnection

import pytest

from repro.fabric import RetryPolicy
from repro.serve import ServeClient, ServeClientError
from repro.serve.app import RETRY_AFTER_SECONDS
from repro.serve.protocol import error_event

#: No-sleep retry policy: bounded attempts without wall-clock cost.
FAST_RETRY = RetryPolicy(max_attempts=3, base_delay=0.0, max_delay=0.0,
                         jitter=0.0)


def raw_post_check(port, payload):
    """POST /check over a bare connection so headers stay visible."""
    conn = HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        conn.request("POST", "/check", body=json.dumps(payload),
                     headers={"Content-Type": "application/json"})
        response = conn.getresponse()
        body = json.loads(response.read().decode("utf-8"))
        headers = {key.lower(): value
                   for key, value in response.getheaders()}
        return response.status, headers, body
    finally:
        conn.close()


class CountingClient(ServeClient):
    """A client that counts its /check submissions."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.posts = 0

    def _request(self, method, path, body=None):
        if path == "/check":
            self.posts += 1
        return super()._request(method, path, body)


class TestErrorEventField:
    def test_retryable_is_present_only_when_set(self):
        assert error_event("x", status=503,
                           retryable=True)["retryable"] is True
        assert error_event("x", status=503,
                           retryable=False)["retryable"] is False
        assert "retryable" not in error_event("x", status=500)

    def test_retryable_does_not_disturb_the_event_shape(self):
        event = error_event("boom", job_id=7, status=503, retryable=True)
        assert event["type"] == "error"
        assert event["job"] == 7
        assert event["error"] == "boom"


class TestLoadSheddingResponses:
    def test_draining_503_carries_retry_after_and_retryable(
            self, make_daemon):
        app = make_daemon()
        app._draining = True
        status, headers, body = raw_post_check(app.port,
                                               {"entry": "handshake"})
        assert status == 503
        assert headers["retry-after"] == str(RETRY_AFTER_SECONDS)
        assert body["retryable"] is True
        assert "draining" in body["error"]

    def test_validation_still_precedes_the_shed(self, make_daemon):
        # A request the daemon could never serve is a 404 even while
        # draining: retrying it elsewhere would be pointless.
        app = make_daemon()
        app._draining = True
        status, _, body = raw_post_check(app.port,
                                         {"entry": "no_such_entry"})
        assert status == 404
        assert "retryable" not in body

    def test_queue_full_503_carries_retry_after_and_retryable(
            self, make_daemon):
        app = make_daemon(jobs=1, queue_size=1)
        client = ServeClient(port=app.port)
        blocker = client.check_stream(entry="handshake", delay=1.0)
        assert next(blocker)["type"] == "queued"
        assert next(blocker)["type"] == "running"
        queued = client.check_stream(entry="vme_read", delay=0.0)
        assert next(queued)["type"] == "queued"
        status, headers, body = raw_post_check(app.port,
                                               {"entry": "mutex_element"})
        assert status == 503
        assert headers["retry-after"] == str(RETRY_AFTER_SECONDS)
        assert body["retryable"] is True
        assert list(blocker)[-1]["type"] == "result"
        assert list(queued)[-1]["type"] == "result"


class TestClientRetry:
    def test_plain_client_fails_on_the_first_refusal(self, make_daemon):
        app = make_daemon()
        app._draining = True
        client = CountingClient(port=app.port)
        with pytest.raises(ServeClientError) as info:
            client.check(entry="handshake")
        assert info.value.status == 503
        assert client.posts == 1

    def test_retry_is_bounded_by_the_policy_budget(self, make_daemon):
        app = make_daemon()
        app._draining = True
        client = CountingClient(port=app.port, retry=FAST_RETRY)
        with pytest.raises(ServeClientError) as info:
            client.check(entry="handshake")
        assert info.value.status == 503
        assert info.value.payload["retryable"] is True
        assert client.posts == FAST_RETRY.max_attempts

    def test_retry_succeeds_once_the_daemon_recovers(self, make_daemon):
        app = make_daemon()
        app._draining = True
        recover = threading.Timer(
            0.15, lambda: setattr(app, "_draining", False))
        recover.start()
        try:
            client = CountingClient(
                port=app.port,
                retry=RetryPolicy(max_attempts=20, base_delay=0.05,
                                  max_delay=0.05, jitter=0.0))
            result = client.check(entry="handshake")
        finally:
            recover.join()
        assert result["status"] == "ok"
        assert client.posts >= 2

    def test_retry_rides_out_a_full_queue(self, make_daemon):
        app = make_daemon(jobs=1, queue_size=1)
        plain = ServeClient(port=app.port)
        blocker = plain.check_stream(entry="handshake", delay=0.4)
        assert next(blocker)["type"] == "queued"
        assert next(blocker)["type"] == "running"
        queued = plain.check_stream(entry="vme_read", delay=0.0)
        assert next(queued)["type"] == "queued"
        retrying = CountingClient(
            port=app.port,
            retry=RetryPolicy(max_attempts=40, base_delay=0.05,
                              max_delay=0.05, jitter=0.0))
        start = time.monotonic()
        result = retrying.check(entry="mutex_element")
        assert result["status"] == "ok"
        # It got in only after the blocker freed a slot: real waiting,
        # not a lucky first attempt.
        assert retrying.posts >= 2
        assert time.monotonic() - start > 0.05
        assert list(blocker)[-1]["type"] == "result"
        assert list(queued)[-1]["type"] == "result"
