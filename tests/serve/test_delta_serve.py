"""Schema-2 serve features: ``base`` warm-starts over the wire, strict
config-key validation, and schema negotiation in both directions.

The editor-loop contract end to end: check a base spec, edit it, re-check
with ``base=`` naming the earlier task -- the daemon resolves the
reference against its warm stores, the worker seeds the traversal, and
the stable verdict still byte-matches a cold daemon's.
"""

import json

import pytest

from repro.serve import ServeClient
from repro.serve.client import ServeClientError
from repro.serve.protocol import SERVE_SCHEMA_VERSION
from repro.stg.generators import build_example
from repro.stg.parser import parse_g
from repro.stg.stg import SignalKind
from repro.stg.writer import to_g_string


def base_text(scale=6):
    return to_g_string(build_example("muller_pipeline", scale))


def edited_text(scale=6, signal="xprobe"):
    stg = parse_g(base_text(scale), name="edited")
    rising, falling = f"{signal}+", f"{signal}-"
    stg.add_signal(signal, SignalKind.INTERNAL, initial_value=False)
    stg.add_place("p_x0", tokens=1)
    stg.add_place("p_x1")
    stg.add_transition(rising)
    stg.add_transition(falling)
    for arc in (("p_x0", rising), (rising, "p_x1"),
                ("p_x1", falling), (falling, "p_x0")):
        stg.add_arc(*arc)
    return to_g_string(stg)


class TestBaseFlow:
    def test_edit_recheck_seeds_from_the_named_task(self, client):
        client.check(g_text=base_text(), name="editbase", checks=["csc"])
        result = client.check(g_text=edited_text(), name="edit1",
                              checks=["csc"], base="editbase")
        delta = result["entry"]["report"]["delta"]
        assert delta["tier"] == "seed"
        assert delta["closed"] is True
        assert result["stable"]["report"]["delta"] is None

    def test_base_accepts_the_echoed_reachability_fingerprint(self,
                                                              client):
        # A delta queued event echoes the resolved base as a raw
        # reachability fingerprint; quoting it back must resolve
        # without any name lookup.
        client.check(g_text=base_text(), name="editbase", checks=["csc"])
        events = list(client.check_stream(g_text=edited_text(),
                                          name="edit1", checks=["csc"],
                                          base="editbase"))
        assert events[0]["schema"] == SERVE_SCHEMA_VERSION
        fingerprint = events[0]["base"]
        # A *different* second edit (an identical one would hit the
        # warm reachability store outright, no delta path needed).
        result = client.check(g_text=edited_text(signal="yprobe"),
                              name="edit2", checks=["csc"],
                              base=fingerprint)
        assert result["entry"]["report"]["delta"]["tier"] == "seed"

    def test_queued_event_echoes_the_resolved_base(self, client):
        client.check(g_text=base_text(), name="editbase", checks=["csc"])
        events = list(client.check_stream(g_text=edited_text(),
                                          name="edit1", checks=["csc"],
                                          base="editbase"))
        assert len(events[0]["base"]) == 64

    def test_base_corpus_entry_resolves(self, client):
        client.check(entry="handshake", checks=["csc"])
        # A genuine rename (rewritten ``.model`` line) -- an identical
        # text would be served by the exact warm store, no delta path.
        edited = "\n".join(
            ".model edited" if line.startswith(".model") else line
            for line in to_g_string(
                build_example("handshake")).splitlines()) + "\n"
        result = client.check(g_text=edited, name="edit1",
                              checks=["csc"], base="handshake")
        assert result["entry"]["report"]["delta"]["tier"] in (
            "hit", "seed")

    def test_stable_verdict_matches_a_cold_daemon(self, make_daemon):
        warm_app = make_daemon()
        cold_app = make_daemon()
        warm = ServeClient(port=warm_app.port)
        cold = ServeClient(port=cold_app.port)
        warm.check(g_text=base_text(), name="editbase", checks=["csc"])
        seeded = warm.check(g_text=edited_text(), name="edit1",
                            checks=["csc"], base="editbase")
        fresh = cold.check(g_text=edited_text(), name="edit1",
                           checks=["csc"])
        assert seeded["entry"]["report"]["delta"]["tier"] == "seed"
        assert json.dumps(seeded["stable"], sort_keys=True) == \
            json.dumps(fresh["stable"], sort_keys=True)

    def test_delta_metrics_fire(self, client):
        client.check(g_text=base_text(), name="editbase", checks=["csc"])
        client.check(g_text=edited_text(), name="edit1", checks=["csc"],
                     base="editbase")
        metrics = client.metrics()["metrics"]
        assert metrics["serve.delta.requests"]["value"] == 1
        assert metrics["serve.bdd.delta_seeds"]["value"] == 1
        assert metrics["serve.bdd.delta_colds"]["value"] == 0


class TestValidation:
    def test_unknown_base_is_404(self, client):
        with pytest.raises(ServeClientError) as error:
            client.check(g_text=edited_text(), base="no-such-base")
        assert error.value.status == 404
        assert "unknown base" in str(error.value)

    def test_unknown_config_key_is_400(self, client):
        with pytest.raises(ServeClientError) as error:
            client.check(g_text=base_text(),
                         config={"orderin": "force"})
        assert error.value.status == 400
        assert "unknown config key" in str(error.value)
        assert "ordering" in str(error.value)  # names the real fields


class TestSchemaNegotiation:
    def test_healthz_serves_schema_2(self, client):
        assert client.health()["schema"] == SERVE_SCHEMA_VERSION == 2
        assert client.server_schema() == 2

    def test_new_client_rejects_base_against_old_server(self, client):
        # Simulate a schema-1 daemon through the negotiation cache: the
        # client must fail fast on its own side, before sending.
        client._server_schema = 1
        with pytest.raises(ServeClientError, match="schema >= 2"):
            client.check(g_text=edited_text(), base="editbase")
        with pytest.raises(ServeClientError, match="schema >= 2"):
            next(client.check_stream(g_text=edited_text(),
                                     base="editbase"))

    def test_old_client_requests_still_work(self, client):
        # A schema-1 body (no base, loose config) is still valid under
        # schema 2 -- the bump is additive.
        result = client.check(g_text=base_text(), name="old-style",
                              config={"ordering": "force"},
                              checks=["csc"])
        assert result["status"] == "ok"
