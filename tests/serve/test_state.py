"""The warm state: task construction parity, interning, config hygiene."""

import asyncio
import json

import pytest

from repro import corpus
from repro.runner import SweepPlan
from repro.serve.protocol import CheckRequest, ProtocolError
from repro.serve.state import WarmState


@pytest.fixture
def state(tmp_path):
    return WarmState(str(tmp_path / "state"))


class TestMakeTaskParity:
    def test_corpus_task_fingerprint_matches_the_sweep_plan(self, state):
        # The whole serving story hangs on this: same entry, same
        # fingerprint, therefore same RunStore key and stable verdict
        # as a batch-check sweep.
        for name in ("handshake", "vme_read", "mutex_element"):
            planned = {task.name: task
                       for task in SweepPlan(names=[name]).tasks()}[name]
            served = state.make_task(CheckRequest(entry=name))
            assert served.fingerprint == planned.fingerprint
            assert served.g_text == planned.g_text
            assert served.expected == planned.expected

    def test_checks_subset_changes_the_fingerprint(self, state):
        full = state.make_task(CheckRequest(entry="handshake"))
        subset = state.make_task(CheckRequest(entry="handshake",
                                              checks=("csc",)))
        assert subset.checks == ("csc",)
        assert subset.fingerprint != full.fingerprint
        planned = SweepPlan(names=["handshake"], checks=["csc"]).tasks()[0]
        assert subset.fingerprint == planned.fingerprint

    def test_arbitration_places_come_from_the_registry(self, state):
        entry = corpus.entry("mutex_element")
        assert entry.arbitration_places  # the test needs a real one
        task = state.make_task(CheckRequest(entry="mutex_element"))
        assert task.config.arbitration_places == \
            tuple(sorted(entry.arbitration_places))


class TestConfigHygiene:
    def test_execution_knobs_are_stripped_from_client_configs(self, state):
        task = state.make_task(CheckRequest(
            entry="handshake",
            config={"timeout": 1.0, "trace_dir": "/tmp/elsewhere",
                    "bdd_cache_dir": "/tmp/evil"}))
        assert task.config.timeout is None
        assert task.config.trace_dir is None
        # ... and the daemon's own BDD cache is stamped on instead.
        assert task.config.bdd_cache_dir == state.bdd_dir

    def test_semantic_config_fields_pass_through(self, state):
        task = state.make_task(CheckRequest(
            entry="handshake", config={"engine": "explicit",
                                       "max_states": 99}))
        assert task.config.engine == "explicit"
        assert task.config.max_states == 99

    def test_invalid_config_is_a_protocol_error(self, state):
        with pytest.raises(ProtocolError, match="invalid engine config"):
            state.make_task(CheckRequest(entry="handshake",
                                         config={"engine": "quantum"}))

    def test_unknown_corpus_entry_maps_to_404(self, state):
        with pytest.raises(ProtocolError) as info:
            state.make_task(CheckRequest(entry="no_such_entry"))
        assert info.value.status == 404


class TestInterning:
    def test_g_text_requests_share_one_string_object(self, state):
        text = corpus.entry("handshake").g_text
        first = state.make_task(CheckRequest(g_text=text))
        second = state.make_task(CheckRequest(g_text="".join(text)))
        assert first.g_text is second.g_text

    def test_anonymous_g_text_requests_share_one_name(self, state):
        text = corpus.entry("handshake").g_text
        first = state.make_task(CheckRequest(g_text=text))
        second = state.make_task(CheckRequest(g_text=text))
        assert first.name == second.name
        assert first.name.startswith("g-")
        assert first.fingerprint == second.fingerprint

    def test_corpus_materialisation_is_computed_once(self, state):
        state.make_task(CheckRequest(entry="handshake"))
        material = state._corpus_materials["handshake"]
        state.make_task(CheckRequest(entry="handshake"))
        assert state._corpus_materials["handshake"] is material


class TestRunTask:
    def test_repeat_runs_are_served_from_the_run_store(self, state):
        task = state.make_task(CheckRequest(entry="handshake"))

        async def scenario():
            first = await state.run_task(task)
            second = await state.run_task(task)
            return first, second

        first, second = asyncio.run(scenario())
        assert first.status == "ok" and not first.cached
        assert second.cached
        assert state.metrics.counter("serve.runstore.misses").value == 1
        assert state.metrics.counter("serve.runstore.hits").value == 1

    def test_single_flight_coalesces_concurrent_duplicates(self, state):
        task = state.make_task(CheckRequest(entry="vme_read"))

        async def scenario():
            return await asyncio.gather(*(state.run_task(task)
                                          for _ in range(4)))

        results = asyncio.run(scenario())
        computed = [result for result in results if not result.cached]
        assert len(computed) == 1  # one traversal for four requests
        assert state.metrics.counter("serve.runstore.hits").value == 3
        assert len({json.dumps(result.stable_dict(), sort_keys=True)
                    for result in results}) == 1
