"""End-to-end daemon tests over a real socket.

The acceptance contracts of the serve subsystem live here: stream
shape, batch-check byte parity, warm-state reuse proven by counters,
single-flight concurrency, bounded-queue backpressure and graceful
shutdown that leaves the JSONL stores intact.
"""

import json
import os
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import corpus
from repro.runner import SweepPlan, run_sweep
from repro.runner.store import RunStore
from repro.serve import SERVE_SCHEMA_VERSION, ServeClient, ServeClientError
from repro.serve.state import RUN_STORE_DIR

PARITY_ENTRIES = ["handshake", "vme_read", "mutex_element",
                  "inconsistent"]


def metric(client, name):
    return client.metrics()["metrics"][name]


class TestStreaming:
    def test_stream_shape_queued_running_stages_result(self, client):
        events = list(client.check_stream(entry="handshake"))
        types = [event["type"] for event in events]
        assert types[0] == "queued"
        assert types[1] == "running"
        assert types[-1] == "result"
        assert "stage" in types[2:-1]
        stages = {event["stage"] for event in events
                  if event["type"] == "stage"}
        assert "queue_wait" in stages
        assert "entry" in stages
        assert "check" in stages  # per-check progress, live

    def test_queued_event_identifies_the_job(self, client):
        events = list(client.check_stream(entry="handshake"))
        queued = events[0]
        assert queued["schema"] == SERVE_SCHEMA_VERSION
        assert queued["name"] == "handshake"
        assert len(queued["fingerprint"]) == 64
        jobs = {event["job"] for event in events}
        assert jobs == {queued["job"]}

    def test_non_streaming_returns_the_terminal_event_only(self, client):
        result = client.check(entry="handshake")
        assert result["type"] == "result"
        assert result["status"] == "ok"
        assert result["entry"]["report"] is not None

    def test_raw_g_text_requests_verify(self, client):
        text = corpus.entry("handshake").g_text
        result = client.check(g_text=text, name="mine")
        assert result["status"] == "ok"
        assert result["name"] == "mine"

    def test_checks_subset_reports_partial_classification(self, client):
        result = client.check(entry="handshake", checks=["csc"])
        assert result["status"] == "ok"
        classification = result["entry"]["report"]["classification"]
        assert classification.startswith("partial")


class TestBatchCheckParity:
    def test_daemon_stable_views_match_the_sweep_runner(self, client):
        # The byte-identity acceptance criterion: a daemon verdict's
        # stable view equals the batch-check stable JSON entry for the
        # same task content.
        sweep = run_sweep(SweepPlan(names=PARITY_ENTRIES),
                          backend="serial")
        batch = {entry["name"]: entry
                 for entry in sweep.stable_json_dict()["entries"]}
        for name in PARITY_ENTRIES:
            served = client.check(entry=name)["stable"]
            assert json.dumps(served, sort_keys=True) == \
                json.dumps(batch[name], sort_keys=True), name


class TestWarmState:
    def test_repeat_request_skips_all_computation(self, client):
        cold = client.check(entry="handshake")
        assert cold["cached"] is False
        assert metric(client, "serve.entry.seconds")["count"] == 1
        warm = client.check(entry="handshake")
        assert warm["cached"] is True
        assert warm["stable"] == cold["stable"]
        # The counters prove nothing ran: still exactly one computed
        # entry, the repeat was a RunStore hit, and the BDD store saw
        # no second traversal.
        assert metric(client, "serve.entry.seconds")["count"] == 1
        assert metric(client, "serve.runstore.hits")["value"] == 1
        assert metric(client, "serve.bdd.misses")["value"] == 1
        assert metric(client, "serve.bdd.hits")["value"] == 0

    def test_different_checks_share_the_stored_traversal(self, client):
        client.check(entry="handshake")
        subset = client.check(entry="handshake", checks=["csc"])
        # Different fingerprint => a real second run (RunStore miss) ...
        assert subset["cached"] is False
        assert metric(client, "serve.runstore.misses")["value"] == 2
        # ... but the traversal itself came from the shared BDDStore.
        assert metric(client, "serve.bdd.misses")["value"] == 1
        assert metric(client, "serve.bdd.hits")["value"] == 1

    def test_concurrent_identical_requests_run_one_traversal(
            self, make_daemon):
        app = make_daemon(jobs=4)
        client = ServeClient(port=app.port)
        with ThreadPoolExecutor(max_workers=4) as pool:
            results = list(pool.map(
                lambda _: client.check(entry="vme_read", delay=0.2),
                range(4)))
        assert {result["status"] for result in results} == {"ok"}
        stables = {json.dumps(result["stable"], sort_keys=True)
                   for result in results}
        assert len(stables) == 1
        # One computation, three warm hits -- the single-flight lock
        # coalesced the stampede.
        assert metric(client, "serve.entry.seconds")["count"] == 1
        assert metric(client, "serve.runstore.hits")["value"] == 3
        assert metric(client, "serve.bdd.misses")["value"] == 1


class TestMetricsEndpoint:
    def test_snapshot_carries_the_documented_fields(self, client):
        client.check(entry="handshake")
        snapshot = client.metrics()
        assert snapshot["schema"] == SERVE_SCHEMA_VERSION
        metrics = snapshot["metrics"]
        for name in ("serve.requests", "serve.queue.depth",
                     "serve.request.seconds", "serve.queue_wait.seconds",
                     "serve.entry.seconds", "serve.runstore.hits",
                     "serve.runstore.misses", "serve.runstore.records",
                     "serve.bdd.hits", "serve.bdd.misses",
                     "serve.intern.entries", "serve.uptime.seconds"):
            assert name in metrics, name
        assert metrics["serve.requests"]["kind"] == "counter"
        assert metrics["serve.requests"]["value"] == 1
        assert metrics["serve.request.seconds"]["kind"] == "histogram"

    def test_health_endpoint(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["schema"] == SERVE_SCHEMA_VERSION


class TestErrors:
    def test_unknown_route_is_404(self, client):
        with pytest.raises(ServeClientError) as info:
            client._simple("GET", "/nope")
        assert info.value.status == 404

    def test_malformed_body_is_400(self, client):
        with pytest.raises(ServeClientError) as info:
            client.check(entry="handshake", config={"engine": "quantum"})
        assert info.value.status == 400

    def test_unknown_entry_is_404(self, client):
        with pytest.raises(ServeClientError) as info:
            client.check(entry="definitely_not_registered")
        assert info.value.status == 404

    def test_unparseable_specification_is_an_error_result(self, client):
        # A failing *check* is still a verdict-shaped answer (exactly as
        # in a sweep): a terminal result with status "error", not an
        # HTTP failure.
        result = client.check(g_text=".bogus_directive\n")
        assert result["status"] == "error"
        assert result["entry"]["error"]

    def test_full_queue_rejects_with_503(self, make_daemon):
        app = make_daemon(jobs=1, queue_size=1)
        client = ServeClient(port=app.port)
        # Occupy the single worker (wait for "running" so the queue is
        # provably empty again), then fill the one queue slot.
        blocker = client.check_stream(entry="handshake", delay=1.0)
        assert next(blocker)["type"] == "queued"
        assert next(blocker)["type"] == "running"
        queued = client.check_stream(entry="vme_read", delay=0.0)
        assert next(queued)["type"] == "queued"
        with pytest.raises(ServeClientError) as info:
            client.check(entry="mutex_element")
        assert info.value.status == 503
        assert "queue full" in str(info.value)
        # Both accepted jobs still complete.
        assert list(blocker)[-1]["type"] == "result"
        assert list(queued)[-1]["type"] == "result"
        assert metric(client, "serve.rejected")["value"] == 1


class TestGracefulShutdown:
    def test_drain_completes_inflight_jobs_and_keeps_stores_clean(
            self, make_daemon):
        app = make_daemon(jobs=2, queue_size=16)
        client = ServeClient(port=app.port)
        names = ["handshake", "vme_read", "mutex_element"]
        streams = [client.check_stream(entry=name, delay=0.3)
                   for name in names]
        for stream in streams:  # all accepted before the shutdown
            assert next(stream)["type"] == "queued"
        assert client.shutdown() == {"status": "draining"}
        # Every accepted stream still runs to its terminal event.
        finals = [list(stream)[-1] for stream in streams]
        assert [event["type"] for event in finals] == ["result"] * 3
        assert {event["status"] for event in finals} == {"ok"}
        app.stop(timeout=30)
        # New connections are refused once the listener closed.
        with pytest.raises(ServeClientError):
            client.health()
        # The JSONL store survived the shutdown without a torn line.
        store = RunStore(os.path.join(app.state.state_dir, RUN_STORE_DIR))
        assert store.skipped_lines == 0
        assert len(store) == len(names)
        for name in names:
            assert name in store
