"""The wire schema: request validation and event records."""

import json

import pytest

from repro.runner.results import EntryResult
from repro.serve import protocol
from repro.serve.protocol import ProtocolError, parse_check_request


class TestParseCheckRequest:
    def test_entry_request_round_trips(self):
        request = parse_check_request(
            {"entry": "vme_read", "checks": ["csc"], "delay": 0.5,
             "stream": False})
        assert request.entry == "vme_read"
        assert request.g_text is None
        assert request.checks == ("csc",)
        assert request.delay == 0.5
        assert request.stream is False

    def test_g_text_request_with_defaults(self):
        request = parse_check_request({"g_text": ".model x\n.end\n"})
        assert request.g_text == ".model x\n.end\n"
        assert request.entry is None
        assert request.checks is None
        assert request.delay == 0.0
        assert request.stream is True

    def test_config_dict_is_carried_verbatim(self):
        request = parse_check_request(
            {"entry": "handshake", "config": {"engine": "explicit"}})
        assert request.config == {"engine": "explicit"}

    @pytest.mark.parametrize("body", [
        None, [], "x", 7,                                # not an object
        {},                                              # neither subject
        {"entry": "a", "g_text": "b"},                   # both subjects
        {"entry": ""},                                   # empty subject
        {"entry": "a", "check": ["csc"]},                # typo'd key
        {"entry": "a", "checks": "csc"},                 # not a list
        {"entry": "a", "checks": [1]},                   # not names
        {"entry": "a", "config": ["engine"]},            # not a dict
        {"entry": "a", "delay": -1},                     # negative delay
        {"entry": "a", "delay": True},                   # bool is not a number
        {"entry": "a", "stream": "yes"},                 # not a bool
    ])
    def test_malformed_bodies_are_rejected(self, body):
        with pytest.raises(ProtocolError):
            parse_check_request(body)

    def test_unknown_keys_name_the_offenders(self):
        with pytest.raises(ProtocolError, match="'check'"):
            parse_check_request({"entry": "a", "check": ["csc"]})


class TestEvents:
    def test_queued_event_carries_the_schema_version(self):
        event = protocol.queued_event(3, "vme_read", "f" * 64, 1)
        assert event["type"] == "queued"
        assert event["schema"] == protocol.SERVE_SCHEMA_VERSION
        assert event["fingerprint"] == "f" * 64
        assert event["queue_depth"] == 1

    def test_stage_event_projects_a_span_record(self):
        record = {"type": "span", "id": 4, "parent": 2, "depth": 2,
                  "name": "check", "start_s": 0.1, "duration_s": 0.05,
                  "attrs": {"check": "csc"}}
        event = protocol.stage_event(7, record)
        assert event == {"type": "stage", "job": 7, "stage": "check",
                         "duration_s": 0.05, "attrs": {"check": "csc"}}

    def test_result_event_embeds_full_and_stable_views(self):
        result = EntryResult(name="x", status="ok", engine="symbolic",
                             fingerprint="abc", duration=1.5,
                             provenance={"backend": "serve"})
        event = protocol.result_event(1, result)
        assert event["status"] == "ok"
        assert event["entry"] == result.to_dict()
        assert event["stable"] == result.stable_dict()
        assert "provenance" not in event["stable"]

    def test_terminal_events_are_result_and_error(self):
        assert protocol.TERMINAL_EVENTS == ("result", "error")
        assert protocol.error_event("boom", job_id=2)["type"] == "error"

    def test_encode_event_is_one_sorted_json_line(self):
        line = protocol.encode_event({"b": 1, "a": 2})
        assert line == b'{"a": 2, "b": 1}\n'
        assert json.loads(line) == {"a": 2, "b": 1}

    def test_anonymous_names_are_content_derived(self):
        first = protocol.anonymous_name(".model x\n")
        assert first == protocol.anonymous_name(".model x\n")
        assert first != protocol.anonymous_name(".model y\n")
        assert first.startswith("g-") and len(first) == 14
