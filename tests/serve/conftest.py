"""Fixtures for the serve-daemon tests: a real daemon on a real socket.

Every test gets its own daemon on a free port with a fresh state
directory -- the warm-state tests are exactly about what persists
*within* one daemon's life, so nothing may leak between tests.
"""

import pytest

from repro.serve import ServeApp, ServeClient


@pytest.fixture
def make_daemon(tmp_path):
    """Factory for daemons with custom knobs; all stopped on teardown."""
    apps = []

    def factory(**kwargs) -> ServeApp:
        kwargs.setdefault("state_dir",
                          str(tmp_path / f"state-{len(apps)}"))
        kwargs.setdefault("jobs", 2)
        app = ServeApp(**kwargs)
        apps.append(app)
        return app.run_in_thread()

    yield factory
    for app in apps:
        app.stop(timeout=30)


@pytest.fixture
def daemon(make_daemon):
    """One default daemon (2 workers, fresh state dir)."""
    return make_daemon()


@pytest.fixture
def client(daemon):
    return ServeClient(port=daemon.port)
