"""Tests of the typed EngineConfig: normalisation, validation, round-trips."""

import pickle

import pytest

from repro.api import ApiError, EngineConfig, UnknownEngineError


class TestDefaults:
    @pytest.mark.smoke
    def test_defaults(self):
        config = EngineConfig()
        assert config.engine == "symbolic"
        assert config.ordering == "force"
        assert config.traversal_strategy == "chained"
        assert config.arbitration_places == ()
        assert config.initial_values is None
        assert config.timeout is None

    def test_frozen_and_hashable(self):
        config = EngineConfig()
        with pytest.raises(AttributeError):
            config.engine = "explicit"
        assert {config: 1}[EngineConfig()] == 1


class TestNormalisation:
    def test_arbitration_places_sorted_tuple(self):
        config = EngineConfig(arbitration_places=("p_z", "p_a"))
        assert config.arbitration_places == ("p_a", "p_z")
        # Two spellings of the same semantics are the same config.
        assert config == EngineConfig(arbitration_places=["p_a", "p_z"])

    def test_initial_values_mapping_becomes_sorted_pairs(self):
        config = EngineConfig(initial_values={"b": 1, "a": 0})
        assert config.initial_values == (("a", False), ("b", True))
        assert config.initial_values_dict == {"a": False, "b": True}

    def test_with_overrides_revalidates(self):
        config = EngineConfig()
        assert config.with_overrides(engine="explicit").engine == "explicit"
        with pytest.raises(ApiError):
            config.with_overrides(engine="nonsense")


class TestValidation:
    def test_unknown_engine_has_did_you_mean(self):
        with pytest.raises(UnknownEngineError, match="did you mean: symbolic"):
            EngineConfig(engine="symbollic")

    def test_unknown_ordering_rejected(self):
        with pytest.raises(ApiError, match="ordering"):
            EngineConfig(ordering="alphabetical")

    def test_unknown_traversal_strategy_rejected(self):
        with pytest.raises(ApiError, match="traversal"):
            EngineConfig(traversal_strategy="dfs")

    @pytest.mark.parametrize("kwargs", [
        {"max_states": 0}, {"timeout": 0.0}, {"timeout": -1.0}])
    def test_invalid_numeric_knobs_rejected(self, kwargs):
        with pytest.raises(ApiError):
            EngineConfig(**kwargs)


class TestSerialisation:
    @pytest.mark.smoke
    def test_to_dict_from_dict_roundtrip(self):
        config = EngineConfig(
            engine="explicit", ordering="declaration",
            traversal_strategy="frontier", max_states=5_000,
            initial_values={"req": True, "ack": False},
            arbitration_places=("p_me",), timeout=12.5,
            commutativity_fallback_states=99)
        assert EngineConfig.from_dict(config.to_dict()) == config

    def test_to_dict_is_json_stable(self):
        import json

        config = EngineConfig(initial_values={"a": True})
        payload = json.dumps(config.to_dict(), sort_keys=True)
        reloaded = EngineConfig.from_dict(json.loads(payload))
        assert reloaded == config

    def test_from_dict_ignores_unknown_keys_and_fills_defaults(self):
        config = EngineConfig.from_dict(
            {"engine": "explicit", "some_future_field": 42})
        assert config.engine == "explicit"
        assert config.ordering == "force"

    def test_pickle_roundtrip(self):
        config = EngineConfig(arbitration_places=("p_me",))
        assert pickle.loads(pickle.dumps(config)) == config
