"""Tests of the engine and property-check registries and their error paths."""

import pytest

from repro import engines
from repro.api import (
    ALL,
    ApiError,
    CheckSpec,
    EngineConfig,
    UnknownCheckError,
    available_checks,
    default_checks,
    register_check,
    resolve_checks,
    supported_checks,
    unregister_check,
    verify,
)
from repro.engines import EngineRun
from repro.report import ImplementabilityClass, ImplementabilityReport
from repro.stg.generators import handshake


class TestEngineRegistry:
    @pytest.mark.smoke
    def test_builtins_are_registered(self):
        assert engines.available()[:2] == ["symbolic", "explicit"]

    def test_get_unknown_engine_has_did_you_mean(self):
        with pytest.raises(ApiError, match="did you mean: explicit"):
            engines.get("explcit")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            engines.register("symbolic", engines.get("symbolic"))

    def test_custom_engine_plugs_into_the_facade(self):
        class CannedEngine:
            """A fake backend: returns a fixed report, runs no checks."""

            name = "canned"

            @property
            def checks(self):
                return ["consistency"]

            def run(self, stg, config, checks):
                report = ImplementabilityReport(
                    stg_name=stg.name, method="canned")
                report.consistent = True
                return EngineRun(report=report)

        engines.register("canned", CannedEngine())
        try:
            report = verify(handshake(), EngineConfig(engine="canned"))
            assert report.method == "canned"
            assert report.consistent is True
        finally:
            engines.unregister("canned")
        with pytest.raises(ApiError):
            EngineConfig(engine="canned")  # gone again


class TestCheckRegistry:
    def test_builtin_checks_registered_in_canonical_order(self):
        assert available_checks() == [
            "consistency", "safeness", "persistency", "fake_conflicts",
            "csc", "reducibility", "liveness"]

    def test_liveness_is_opt_in_and_symbolic_only(self):
        assert "liveness" not in default_checks("symbolic")
        assert "liveness" in supported_checks("symbolic")
        assert "liveness" not in supported_checks("explicit")

    def test_resolve_none_is_the_default_set(self):
        assert resolve_checks(None, engine="explicit") == \
            default_checks("explicit")

    def test_resolve_all_is_the_supported_set(self):
        assert resolve_checks(ALL, engine="symbolic") == \
            supported_checks("symbolic")

    def test_resolve_comma_string_and_canonical_order(self):
        # Selection order does not matter; registry order does.
        assert resolve_checks("csc , consistency") == ["consistency", "csc"]
        assert resolve_checks(["reducibility", "csc"]) == \
            ["csc", "reducibility"]

    def test_unknown_check_has_did_you_mean(self):
        with pytest.raises(UnknownCheckError, match="did you mean: csc"):
            resolve_checks(["cSc".lower() + "x"])  # "cscx"

    def test_engine_unsupported_check_is_an_error(self):
        with pytest.raises(UnknownCheckError, match="not supported"):
            resolve_checks(["liveness"], engine="explicit")

    def test_replacing_a_builtin_check_overrides_both_engines(self):
        from repro.api.checks import CHECKS

        original = CHECKS["csc"]
        calls = []

        def fake_csc(context, report):
            calls.append(report.method)
            report.add_verdict("complete state coding (CSC)", True)

        register_check(CheckSpec(
            name="csc", phase="CSC", description="stub",
            apply=fake_csc), replace=True)
        try:
            for engine in ("symbolic", "explicit"):
                report = verify(handshake(), EngineConfig(engine=engine),
                                checks=["csc"])
                assert report.csc is None  # the stub set only the verdict
            assert calls == ["symbolic", "explicit"]
        finally:
            register_check(original, replace=True)

    def test_custom_check_runs_on_both_engines(self):
        register_check(CheckSpec(
            name="interface_width",
            phase="extra",
            description="at most 8 interface signals",
            apply=lambda context, report: report.add_verdict(
                "interface width", len(context.stg.signals) <= 8)))
        try:
            for engine in ("symbolic", "explicit"):
                report = verify(handshake(), EngineConfig(engine=engine),
                                checks=["consistency", "interface_width"])
                names = [verdict.name for verdict in report.verdicts]
                assert "interface width" in names
                assert all(verdict.holds for verdict in report.verdicts)
        finally:
            unregister_check("interface_width")
        with pytest.raises(UnknownCheckError):
            resolve_checks(["interface_width"])


class TestFacadeValidation:
    def test_unknown_arbitration_place_is_an_api_error(self):
        from repro.stg.generators import mutex_element

        with pytest.raises(ApiError, match="did you mean: p_me"):
            verify(mutex_element(),
                   EngineConfig(arbitration_places=("p_mee",)))

    @pytest.mark.parametrize("engine", ["symbolic", "explicit"])
    def test_unknown_place_rejected_on_both_engines(self, engine):
        with pytest.raises(ApiError, match="unknown arbitration place"):
            verify(handshake(), EngineConfig(
                engine=engine, arbitration_places=("p_nowhere",)))

    def test_legacy_checker_shims_validate_too(self):
        from repro.core import ImplementabilityChecker
        from repro.sg import ExplicitChecker

        with pytest.raises(ApiError):
            ImplementabilityChecker(
                handshake(), arbitration_places=["p_typo"]).check()
        with pytest.raises(ApiError):
            ExplicitChecker(
                handshake(), arbitration_places=["p_typo"]).check()

    @pytest.mark.smoke
    def test_subset_run_reports_only_selected_checks(self):
        report = verify(handshake(), checks=("csc",))
        names = [verdict.name for verdict in report.verdicts]
        assert names == ["complete state coding (CSC)",
                         "unique state coding (USC)"]
        # basics unchecked: the explicit partial verdict, never a rung
        # of the Definition 2.6 hierarchy
        assert report.classification is ImplementabilityClass.PARTIAL
        assert report.consistent is None

    def test_partial_coding_checks_leave_classification_undecided(self):
        # Basics pass but CSC was never checked: no class can be claimed
        # (a gate-implementable spec must not be reported as SI).
        report = verify(handshake(),
                        checks=("consistency", "persistency"))
        assert report.classification is ImplementabilityClass.PARTIAL
        # With CSC checked and passing, GATE is decided without the
        # reducibility check; a failed basic is decisive on its own.
        report = verify(handshake(),
                        checks=("consistency", "persistency", "csc"))
        assert report.gate_implementable
        from repro.stg.generators import inconsistent_example

        report = verify(inconsistent_example(),
                        checks=("consistency", "persistency"))
        assert str(report.classification) == "not SI-implementable"

    def test_initial_values_honoured_by_both_engines(self):
        for engine in ("symbolic", "explicit"):
            stg = handshake()
            stg._initial_values.clear()  # strip declared values
            config = EngineConfig(engine=engine,
                                  initial_values={"r": False, "a": False})
            report = verify(stg, config)
            assert report.gate_implementable, engine
