"""Cross-engine parity through the public facade.

Every fixed-size (non-family) corpus entry is verified through
``repro.api.verify`` with both registered built-in engines; the engines
must agree on the classification and -- when the specification is
consistent, so the state spaces coincide -- on every per-check verdict
field.  This is the API-level counterpart of the pipeline-level
cross-validation in tests/corpus/test_cross_engine.py: it exercises the
registry dispatch, the config normalisation and the check appliers
end to end.
"""

import pytest

from repro import corpus
from repro.api import ALL, EngineConfig, verify

#: The hand-written, fixed-size entries (family-derived entries are
#: covered by the family sweeps and the existing cross-engine tests).
NON_FAMILY = [name for name in corpus.names()
              if corpus.entry(name).family is None]

#: Report fields each check fills; parity is asserted per check.
CHECK_FIELDS = {
    "consistency": ("consistent",),
    "persistency": ("output_persistent",),
    "fake_conflicts": ("fake_free",),
    "csc": ("csc", "usc"),
    "reducibility": ("deterministic", "commutative", "complementary_free"),
}


def _reports(name):
    entry = corpus.entry(name)
    stg = corpus.load(name)
    reports = {}
    for engine in ("symbolic", "explicit"):
        config = EngineConfig(
            engine=engine,
            arbitration_places=tuple(entry.arbitration_places))
        reports[engine] = verify(corpus.load(name), config, checks=ALL)
    assert stg.name == name
    return reports


def test_non_family_selection_is_nonempty():
    assert len(NON_FAMILY) >= 10


@pytest.mark.parametrize("name", NON_FAMILY)
def test_engines_agree_through_the_facade(name):
    reports = _reports(name)
    symbolic, explicit = reports["symbolic"], reports["explicit"]

    # The classification is pinned by the registry for every entry and
    # must be identical across engines (both were validated against the
    # same expected metadata).
    assert symbolic.classification == explicit.classification

    entry = corpus.entry(name)
    assert entry.mismatches(symbolic) == []
    assert entry.mismatches(explicit) == []

    if not symbolic.consistent:
        return  # state spaces differ by construction beyond this point
    assert symbolic.num_states == explicit.num_states
    for check, fields in CHECK_FIELDS.items():
        for field in fields:
            assert getattr(symbolic, field) == getattr(explicit, field), \
                f"{name}: engines disagree on {check}/{field}"


@pytest.mark.smoke
@pytest.mark.parametrize("name", ["handshake", "vme_read", "inconsistent"])
def test_facade_parity_smoke_subset(name):
    reports = _reports(name)
    assert reports["symbolic"].classification == \
        reports["explicit"].classification
