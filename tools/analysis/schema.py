"""Schema-contract pass (RA101-RA104).

The repo's serialisation discipline, enforced:

* every class with a ``to_dict`` has a ``from_dict`` (RA101) and the
  pair covers every dataclass field (RA102) -- worker pipes, the JSONL
  RunStore and ``--json`` all share that one schema;
* volatile-field strip lists (``VOLATILE_TRAVERSAL_FIELDS`` style) only
  name fields that actually exist somewhere (RA103), so renaming a
  stats field cannot silently stop it being stripped from stable JSON;
* fingerprint material always hashes a ``SCHEMA_VERSION`` (RA104), so
  bumping the version keeps invalidating stale cache records.
"""

from __future__ import annotations

import ast
import re
from typing import List, Optional, Set

from tools.analysis.core import Finding, Project, SourceFile

_STRIP_LIST_NAME = re.compile(r"^(VOLATILE|STRIPPED)_[A-Z_]*FIELDS$")


def _is_dataclass(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator,
                                              ast.Call) else decorator
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return True
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return True
    return False


def _field_skipped(value: Optional[ast.expr]) -> bool:
    """``field(init=False)`` defaults are derived state, not schema."""
    if isinstance(value, ast.Call) and isinstance(value.func, ast.Name) \
            and value.func.id == "field":
        for keyword in value.keywords:
            if keyword.arg == "init" \
                    and isinstance(keyword.value, ast.Constant) \
                    and keyword.value.value is False:
                return True
    return False


def _annotation_is_classvar(annotation: ast.expr) -> bool:
    node = annotation.value if isinstance(annotation,
                                          ast.Subscript) else annotation
    if isinstance(node, ast.Attribute):
        return node.attr == "ClassVar"
    return isinstance(node, ast.Name) and node.id == "ClassVar"


def dataclass_fields(node: ast.ClassDef) -> List[str]:
    """Public schema fields of a dataclass body."""
    names: List[str] = []
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) \
                and isinstance(stmt.target, ast.Name) \
                and not stmt.target.id.startswith("_") \
                and not _annotation_is_classvar(stmt.annotation) \
                and not _field_skipped(stmt.value):
            names.append(stmt.target.id)
    return names


def _method(node: ast.ClassDef, name: str) -> Optional[ast.FunctionDef]:
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                and stmt.name == name:
            return stmt
    return None


def _referenced_names(func: ast.FunctionDef) -> Set[str]:
    """Field references inside a to_dict/from_dict body: ``self.x``
    attributes, string literals (dict keys, ``data.get("x")``) and
    keyword-argument names of calls (``cls(x=...)``)."""
    referenced: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Attribute) \
                and isinstance(node.value, ast.Name) \
                and node.value.id == "self":
            referenced.add(node.attr)
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            referenced.add(node.value)
        elif isinstance(node, ast.Call):
            referenced.update(kw.arg for kw in node.keywords
                              if kw.arg is not None)
    return referenced


def _delegates_to_fields(func: ast.FunctionDef) -> bool:
    """A generic body driven by ``dataclasses.fields(cls)`` (or
    ``asdict``) covers every field by construction."""
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            target = node.func
            name = target.attr if isinstance(target, ast.Attribute) \
                else target.id if isinstance(target, ast.Name) else None
            if name in ("fields", "asdict", "astuple"):
                return True
    return False


def _check_class(source: SourceFile, node: ast.ClassDef,
                 findings: List[Finding]) -> None:
    to_dict = _method(node, "to_dict")
    from_dict = _method(node, "from_dict")
    if to_dict is None and from_dict is None:
        return
    if to_dict is None or from_dict is None:
        present, missing = (("to_dict", "from_dict") if from_dict is None
                            else ("from_dict", "to_dict"))
        findings.append(Finding(
            rule="RA101", path=source.path, line=node.lineno,
            message=f"class {node.name} defines {present} but no "
                    f"{missing}; serialised schemas must round-trip"))
        return
    if not _is_dataclass(node):
        return
    for method, direction in ((to_dict, "to_dict"),
                              (from_dict, "from_dict")):
        if _delegates_to_fields(method):
            continue
        referenced = _referenced_names(method)
        for field_name in dataclass_fields(node):
            if field_name not in referenced:
                findings.append(Finding(
                    rule="RA102", path=source.path, line=method.lineno,
                    message=f"{node.name}.{direction} does not cover "
                            f"field {field_name!r}; the round-trip "
                            f"drops it"))


def _all_known_fields(project: Project) -> Set[str]:
    """Every dataclass field name plus every to_dict string key in the
    analyzed files -- the universe strip lists may refer to."""
    known: Set[str] = set()
    for source in project.files:
        if source.tree is None:
            continue
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef) and _is_dataclass(node):
                known.update(dataclass_fields(node))
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and node.name == "to_dict":
                known.update(_referenced_names(node))
    return known


def _check_strip_lists(source: SourceFile, known_fields: Set[str],
                       findings: List[Finding]) -> None:
    assert source.tree is not None
    for node in source.tree.body:
        if not (isinstance(node, ast.Assign) and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)):
            continue
        name = node.targets[0].id
        if not _STRIP_LIST_NAME.match(name):
            continue
        try:
            entries = ast.literal_eval(node.value)
        except ValueError:
            continue
        if not isinstance(entries, (list, tuple)):
            continue
        for entry in entries:
            if isinstance(entry, str) and entry not in known_fields:
                findings.append(Finding(
                    rule="RA103", path=source.path, line=node.lineno,
                    message=f"strip list {name} names {entry!r}, which "
                            f"is not a field of any analyzed dataclass "
                            f"-- stale after a rename?"))


def _hashes_material(func: ast.FunctionDef) -> bool:
    for node in ast.walk(func):
        if isinstance(node, ast.Attribute) and isinstance(node.value,
                                                          ast.Name):
            if node.value.id == "hashlib":
                return True
            if node.attr in ("sha256", "sha1", "md5", "blake2b"):
                return True
    return False


def _mentions_schema_version(func: ast.FunctionDef) -> bool:
    for node in ast.walk(func):
        if isinstance(node, ast.Name) and "SCHEMA_VERSION" in node.id:
            return True
        if isinstance(node, ast.Attribute) and "SCHEMA_VERSION" in node.attr:
            return True
    return False


def _check_fingerprints(source: SourceFile,
                        findings: List[Finding]) -> None:
    assert source.tree is not None
    for node in ast.walk(source.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if "fingerprint" not in node.name.lower():
            continue
        if _hashes_material(node) and not _mentions_schema_version(node):
            findings.append(Finding(
                rule="RA104", path=source.path, line=node.lineno,
                message=f"{node.name} hashes fingerprint material "
                        f"without a SCHEMA_VERSION constant; version "
                        f"bumps would no longer invalidate caches"))


def run(project: Project) -> List[Finding]:
    config = project.config
    findings: List[Finding] = []
    known_fields: Optional[Set[str]] = None
    for source in project.files:
        if source.tree is None or not config.is_library(source.path):
            continue
        if config.rule_enabled("RA101") or config.rule_enabled("RA102"):
            for node in ast.walk(source.tree):
                if isinstance(node, ast.ClassDef):
                    _check_class(source, node, findings)
        if config.rule_enabled("RA103"):
            if known_fields is None:
                known_fields = _all_known_fields(project)
            _check_strip_lists(source, known_fields, findings)
        if config.rule_enabled("RA104"):
            _check_fingerprints(source, findings)
    return [f for f in findings
            if config.rule_applies(f.rule, f.path)]
