"""Registry-hygiene pass (RA301-RA302).

The repo routes extensibility through three registries: property checks
(``register_check`` in ``repro.api``), engines (``repro.engines
.register``) and execution backends (``repro.runner.backends
.register``).  A registered name that no test exercises is a dead
feature waiting to rot; one missing from the README tables is invisible
to users.  This pass extracts every registration made with a literal
name in library code and greps the test tree and README for it.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import List

from tools.analysis.core import Finding, Project


@dataclass(frozen=True)
class Registration:
    kind: str      # "check" | "engine" | "backend"
    name: str
    path: str
    line: int


def _literal_registrations(project: Project) -> List[Registration]:
    registrations: List[Registration] = []
    for source in project.files:
        if source.tree is None \
                or not project.config.is_library(source.path):
            continue
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            func_name = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else None)
            if func_name == "register_check" and node.args:
                spec = node.args[0]
                if isinstance(spec, ast.Call):
                    for keyword in spec.keywords:
                        if keyword.arg == "name" and isinstance(
                                keyword.value, ast.Constant):
                            registrations.append(Registration(
                                "check", str(keyword.value.value),
                                source.path, node.lineno))
            elif func_name == "register" and node.args \
                    and isinstance(node.args[0], ast.Constant) \
                    and isinstance(node.args[0].value, str):
                kind = ("engine" if "engines" in source.path
                        else "backend" if "backends" in source.path
                        else None)
                if kind:
                    registrations.append(Registration(
                        kind, node.args[0].value,
                        source.path, node.lineno))
    return registrations


def _mentions(corpus: str, name: str) -> bool:
    return re.search(rf"\b{re.escape(name)}\b", corpus) is not None


def run(project: Project) -> List[Finding]:
    config = project.config
    if not (config.rule_enabled("RA301") or config.rule_enabled("RA302")):
        return []
    registrations = _literal_registrations(project)
    if not registrations:
        return []
    findings: List[Finding] = []
    tests_text = project.corpus_text(config.tests_root)
    readme_text = ""
    if config.readme_path:
        try:
            with open(config.readme_path, encoding="utf-8") as handle:
                readme_text = handle.read()
        except OSError:
            readme_text = ""
    for registration in registrations:
        if config.tests_root and not _mentions(tests_text,
                                               registration.name):
            findings.append(Finding(
                rule="RA301", path=registration.path,
                line=registration.line,
                message=f"registered {registration.kind} "
                        f"{registration.name!r} is never exercised "
                        f"under {config.tests_root}/"))
        if config.readme_path and not _mentions(readme_text,
                                                registration.name):
            findings.append(Finding(
                rule="RA302", path=registration.path,
                line=registration.line,
                message=f"registered {registration.kind} "
                        f"{registration.name!r} is not documented in "
                        f"{config.readme_path}"))
    return [f for f in findings if config.rule_applies(f.rule, f.path)]
