"""Determinism pass (RA001-RA003).

The repo's stable-output contract (sweep results byte-identical across
backends, machines and ``PYTHONHASHSEED``) died twice to the same class
of bug: an unordered collection iterated into an order-sensitive sink.
PR 4 fixed the ``.g`` parser declaring transitions out of a set
comprehension and the FORCE ordering summing floats in pre/post-set hash
order -- this pass re-detects both patterns statically.

The analysis is a per-scope (function body or module top level) taint
walk.  *Unordered origins* are set/frozenset displays and comprehensions,
``set()``/``frozenset()`` calls, set algebra, calls to known
set-returning APIs (the Petri-net pre/post-set accessors plus anything
annotated ``-> Set[...]`` in the analyzed files), and names assigned any
of those.  *Order-sensitive sinks* are list building, ``join``,
``sum``/accumulation, ``enumerate`` (position assignment), ``list``/
``tuple`` materialisation and statement loops with effectful bodies.
``sorted(...)`` launders; ``len``/``min``/``max``/``any``/``all``/
membership/set-to-set rebuilds are order-insensitive and never fire.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from tools.analysis.core import Config, Finding, Project, SourceFile, parent_map

#: Methods that return sets wherever they appear.  ``union`` and friends
#: are set algebra; the ``*set_of_*`` names are the repo's Petri-net
#: accessors (``PetriNet.preset_of_transition`` etc.), which the PR-4
#: FORCE bug iterated in hash order.
SET_RETURNING_METHODS = {
    "union", "intersection", "difference", "symmetric_difference",
    "preset_of_transition", "postset_of_transition",
    "preset_of_place", "postset_of_place",
}

#: Module-level ``random`` functions that share the process-global,
#: unseeded RNG state.
GLOBAL_RANDOM_FUNCS = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "seed", "getrandbits", "gauss", "betavariate",
    "expovariate", "triangular", "vonmisesvariate", "normalvariate",
}

#: Builtins whose result does not depend on iteration order -- consuming
#: an unordered iterable through these is fine.
ORDER_INSENSITIVE_CONSUMERS = {
    "len", "min", "max", "any", "all", "set", "frozenset", "sorted",
    "sum",  # overridden below: sum IS order-sensitive (float addition)
}

#: Calls where feeding an unordered iterable fixes an order in the
#: result: these fire.
ORDER_SENSITIVE_CALLS = {"list", "tuple", "enumerate", "sum"}

#: Loop-body statements that make iterating an unordered collection
#: order-sensitive: growing a sequence, accumulating, emitting, writing
#: subscripts (insertion order / last-writer), or any bare call (side
#: effects happen in hash order).
_SEQ_GROWING_METHODS = {"append", "extend", "insert", "update", "write"}


def _set_annotated(node: ast.AST) -> bool:
    """Does a ``-> X`` annotation denote a set type?"""
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute):
        return node.attr in ("Set", "FrozenSet", "AbstractSet", "MutableSet")
    if isinstance(node, ast.Name):
        return node.id in ("set", "frozenset", "Set", "FrozenSet",
                           "AbstractSet", "MutableSet")
    return False


def annotated_set_returners(project: Project) -> Set[str]:
    """Function/method names annotated as returning sets anywhere in the
    analyzed files (callable-name granularity: good enough for a repo
    where names like ``preset_of_transition`` are unambiguous)."""
    names: Set[str] = set()
    for source in project.files:
        if source.tree is None:
            continue
        for node in ast.walk(source.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and node.returns is not None \
                    and _set_annotated(node.returns):
                names.add(node.name)
    return names


class _ScopeTaint:
    """Unordered-value inference for one function body / module level."""

    def __init__(self, set_returners: Set[str]):
        self.set_returners = set_returners
        self.unordered_names: Dict[str, str] = {}  # name -> origin text

    def bind(self, target: ast.expr, value: ast.expr) -> None:
        if isinstance(target, ast.Name):
            origin = self.origin_of(value)
            if origin:
                self.unordered_names[target.id] = origin
            else:
                self.unordered_names.pop(target.id, None)

    def origin_of(self, node: ast.expr) -> Optional[str]:
        """A short description of why ``node`` is unordered, or None."""
        if isinstance(node, ast.Set):
            return "a set display"
        if isinstance(node, ast.SetComp):
            return "a set comprehension"
        if isinstance(node, ast.DictComp):
            # a dict comprehension inherits its insertion order from the
            # iterable it ranges over
            return self.origin_of(node.generators[0].iter)
        if isinstance(node, ast.Name):
            origin = self.unordered_names.get(node.id)
            return f"set-valued variable {node.id!r}" if origin else None
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)):
            return self.origin_of(node.left) or self.origin_of(node.right)
        if isinstance(node, ast.IfExp):
            return self.origin_of(node.body) or self.origin_of(node.orelse)
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name):
                if func.id in ("set", "frozenset"):
                    return f"a {func.id}() call"
                if func.id in self.set_returners:
                    return f"set-returning call {func.id}()"
            if isinstance(func, ast.Attribute):
                if func.attr in SET_RETURNING_METHODS \
                        or func.attr in self.set_returners:
                    return f"set-returning call .{func.attr}()"
        return None


def _random_import_aliases(tree: ast.Module) -> Set[str]:
    """Names bound by ``from random import shuffle, ...``."""
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == "random":
            for alias in node.names:
                if alias.name in GLOBAL_RANDOM_FUNCS:
                    aliases.add(alias.asname or alias.name)
    return aliases


def _key_uses_hash(keyword: ast.keyword) -> Optional[str]:
    value = keyword.value
    if isinstance(value, ast.Name) and value.id in ("hash", "id"):
        return value.id
    if isinstance(value, ast.Lambda):
        for node in ast.walk(value.body):
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Name) \
                    and node.func.id in ("hash", "id"):
                return node.func.id
    return None


def _loop_body_order_sensitive(body: List[ast.stmt]) -> Optional[str]:
    """Why a ``for`` body over an unordered iterable is order-sensitive
    (None = provably insensitive: flag checks, set.add, name rebinds)."""
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Expr) and isinstance(node.value,
                                                         ast.Call):
                call = node.value
                if isinstance(call.func, ast.Attribute) \
                        and call.func.attr in ("add", "discard", "remove"):
                    continue  # set mutation commutes
                return "calls with side effects"
            if isinstance(node, ast.AugAssign):
                return "accumulates with augmented assignment"
            if isinstance(node, ast.Assign) and any(
                    isinstance(t, ast.Subscript) for t in node.targets):
                return "writes subscripts (insertion order)"
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                return "yields items"
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr in _SEQ_GROWING_METHODS:
                return f"grows a sequence (.{node.func.attr})"
    return None


class _FileChecker:
    def __init__(self, source: SourceFile, config: Config,
                 set_returners: Set[str]):
        self.source = source
        self.config = config
        self.set_returners = set_returners
        self.findings: List[Finding] = []
        assert source.tree is not None
        self.parents = parent_map(source.tree)
        self.random_aliases = _random_import_aliases(source.tree)

    def emit(self, rule: str, node: ast.AST, message: str) -> None:
        if self.config.rule_applies(rule, self.source.path):
            self.findings.append(Finding(
                rule=rule, path=self.source.path,
                line=getattr(node, "lineno", 1), message=message))

    # ------------------------------------------------------------------
    def run(self) -> List[Finding]:
        tree = self.source.tree
        self.check_scope(tree.body)
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.check_scope(node.body)
            self.check_hash_ordering(node)
            self.check_random(node)
        return self.findings

    # -- RA002 ---------------------------------------------------------
    def check_hash_ordering(self, node: ast.AST) -> None:
        if not isinstance(node, ast.Call):
            return
        func = node.func
        is_order_call = (
            isinstance(func, ast.Name) and func.id in ("sorted", "min",
                                                       "max"))
        is_sort_method = (isinstance(func, ast.Attribute)
                          and func.attr == "sort")
        if not (is_order_call or is_sort_method):
            return
        for keyword in node.keywords:
            if keyword.arg == "key":
                used = _key_uses_hash(keyword)
                if used:
                    self.emit(
                        "RA002", node,
                        f"ordering key uses {used}(); the resulting "
                        f"order varies per interpreter run -- sort by a "
                        f"stable attribute instead")

    # -- RA003 ---------------------------------------------------------
    def check_random(self, node: ast.AST) -> None:
        if not isinstance(node, ast.Call):
            return
        func = node.func
        name = None
        if isinstance(func, ast.Attribute) \
                and isinstance(func.value, ast.Name) \
                and func.value.id == "random" \
                and func.attr in GLOBAL_RANDOM_FUNCS:
            name = f"random.{func.attr}"
        elif isinstance(func, ast.Name) and func.id in self.random_aliases:
            name = func.id
        if name:
            self.emit(
                "RA003", node,
                f"{name}() uses the process-global unseeded RNG; "
                f"construct a random.Random(seed) so results are "
                f"reproducible across workers")

    # -- RA001 ---------------------------------------------------------
    def check_scope(self, body: List[ast.stmt]) -> None:
        taint = _ScopeTaint(self.set_returners)
        for stmt in body:
            self.visit_stmt(stmt, taint)

    def visit_stmt(self, stmt: ast.stmt, taint: _ScopeTaint) -> None:
        # nested defs get their own scope in run()
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            self.check_expr(stmt.value, taint)
            taint.bind(stmt.targets[0], stmt.value)
            return
        if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self.check_expr(stmt.value, taint)
            taint.bind(stmt.target, stmt.value)
            return
        if isinstance(stmt, ast.For):
            origin = taint.origin_of(stmt.iter)
            if origin:
                reason = _loop_body_order_sensitive(stmt.body)
                if reason:
                    self.emit(
                        "RA001", stmt,
                        f"for-loop iterates {origin} and {reason}; "
                        f"iterate sorted(...) so the effect order does "
                        f"not depend on PYTHONHASHSEED")
            else:
                self.check_expr(stmt.iter, taint)
            for inner in stmt.body + stmt.orelse:
                self.visit_stmt(inner, taint)
            return
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                self.visit_stmt(child, taint)
            elif isinstance(child, ast.expr):
                self.check_expr(child, taint)

    def check_expr(self, expr: ast.expr, taint: _ScopeTaint) -> None:
        for node in ast.walk(expr):
            if isinstance(node, ast.ListComp):
                self.check_comprehension(node, taint)
            elif isinstance(node, ast.GeneratorExp):
                self.check_genexp(node, taint)
            elif isinstance(node, ast.Call):
                self.check_call(node, taint)

    def _laundered(self, node: ast.AST) -> bool:
        """Is this expression the direct argument of sorted(...)?"""
        parent = self.parents.get(node)
        return (isinstance(parent, ast.Call)
                and isinstance(parent.func, ast.Name)
                and parent.func.id == "sorted")

    def check_comprehension(self, node: ast.ListComp,
                            taint: _ScopeTaint) -> None:
        for generator in node.generators:
            origin = taint.origin_of(generator.iter)
            if origin and not self._laundered(node):
                self.emit(
                    "RA001", node,
                    f"list comprehension iterates {origin}; the list "
                    f"order depends on PYTHONHASHSEED -- iterate "
                    f"sorted(...)")

    def check_genexp(self, node: ast.GeneratorExp,
                     taint: _ScopeTaint) -> None:
        parent = self.parents.get(node)
        if not (isinstance(parent, ast.Call)):
            return
        func = parent.func
        sensitive = None
        if isinstance(func, ast.Name) and func.id in ORDER_SENSITIVE_CALLS:
            sensitive = func.id
        elif isinstance(func, ast.Attribute) and func.attr == "join":
            sensitive = "join"
        if sensitive is None:
            return
        for generator in node.generators:
            origin = taint.origin_of(generator.iter)
            if origin:
                self.emit(
                    "RA001", node,
                    f"{sensitive}(...) consumes a generator over "
                    f"{origin}; the result depends on iteration order "
                    f"-- iterate sorted(...)")

    def check_call(self, node: ast.Call, taint: _ScopeTaint) -> None:
        func = node.func
        sensitive = None
        if isinstance(func, ast.Name) and func.id in ORDER_SENSITIVE_CALLS:
            sensitive = func.id
        elif isinstance(func, ast.Attribute) and func.attr == "join":
            sensitive = "join"
        if sensitive is None or not node.args:
            return
        # join takes the iterable as its only argument; enumerate/list/
        # tuple/sum take it first
        origin = taint.origin_of(node.args[0])
        if origin:
            self.emit(
                "RA001", node,
                f"{sensitive}(...) applied directly to {origin}; the "
                f"resulting order depends on PYTHONHASHSEED -- apply "
                f"sorted(...) first")


def run(project: Project) -> List[Finding]:
    set_returners = annotated_set_returners(project)
    findings: List[Finding] = []
    for source in project.files:
        if source.tree is None:
            continue
        if not any(project.config.rule_applies(rule, source.path)
                   for rule in ("RA001", "RA002", "RA003")):
            continue
        findings.extend(
            _FileChecker(source, project.config, set_returners).run())
    return findings
