"""Repo-specific static analysis (``python -m tools.analysis``).

Multi-pass AST analyzer gating the repo's hand-grown invariants:

* **determinism** (RA001-RA003) -- no unordered iteration into
  order-sensitive sinks, no hash()/id() ordering, no unseeded random;
* **schema contracts** (RA101-RA104) -- to_dict/from_dict round-trips,
  live strip lists, SCHEMA_VERSION in fingerprint material;
* **facade purity** (RA201-RA202) -- verification goes through
  ``repro.api``, deprecation shims are not constructed elsewhere;
* **registry hygiene** (RA301-RA302) -- registered checks/engines/
  backends are tested and documented;
* **lint** (RA401-RA404) -- the four rules folded in from the old
  ``tools/lint.py``.

Findings support inline suppressions (``# repro: allow[RA001] reason``)
and the committed baseline ``tools/analysis/baseline.json``.
"""

from tools.analysis.cli import AnalysisResult, analyze_paths, main
from tools.analysis.core import RULES, Config, Finding, Rule

__all__ = ["AnalysisResult", "analyze_paths", "main", "RULES", "Config",
           "Finding", "Rule"]
