"""``python -m tools.analysis`` entry point."""

import sys

from tools.analysis.cli import main

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
