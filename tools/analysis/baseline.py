"""The committed findings baseline.

A baseline lets the analyzer gate from day one: pre-existing findings
recorded in ``tools/analysis/baseline.json`` are reported as
``baselined`` (and do not fail the run), while anything new fails.
Entries are keyed ``(rule, path, message)`` -- line numbers shift with
unrelated edits, the triple does not.  ``--write-baseline`` regenerates
the file; an entry that no longer matches any finding is dropped on the
next write, so the baseline only ever shrinks by fixing code.
"""

from __future__ import annotations

import json
from typing import List, Sequence, Set, Tuple

from tools.analysis.core import Finding

DEFAULT_BASELINE = "tools/analysis/baseline.json"

Key = Tuple[str, str, str]


def load(path: str) -> Set[Key]:
    try:
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
    except FileNotFoundError:
        return set()
    if not isinstance(data, dict) or not isinstance(
            data.get("findings"), list):
        raise ValueError(
            f"{path}: malformed baseline (expected an object with a "
            f"'findings' list; regenerate with --write-baseline)")
    keys: Set[Key] = set()
    for entry in data["findings"]:
        keys.add((str(entry["rule"]), str(entry["path"]),
                  str(entry["message"])))
    return keys


def write(path: str, findings: Sequence[Finding]) -> None:
    entries = sorted({finding.key for finding in findings})
    payload = {
        "comment": "Accepted pre-existing findings of tools/analysis; "
                   "regenerate with: python -m tools.analysis "
                   "--write-baseline.  Fix code to shrink this file -- "
                   "never add entries by hand.",
        "findings": [
            {"rule": rule, "path": file_path, "message": message}
            for rule, file_path, message in entries],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def split(findings: Sequence[Finding], keys: Set[Key]
          ) -> Tuple[List[Finding], List[Finding]]:
    """Partition into (new, baselined)."""
    new: List[Finding] = []
    baselined: List[Finding] = []
    for finding in findings:
        (baselined if finding.key in keys else new).append(finding)
    return new, baselined
