"""Lint pass (RA401-RA404): the four rules folded in from the old
``tools/lint.py`` fallback linter.

* **RA401 syntax-error** -- the file must parse (ruff E999);
* **RA402 unused-import** -- a module-level import never referenced and
  not re-exported via ``__all__`` (ruff F401; ``__init__`` modules are
  exempt: re-exporting is their job);
* **RA403 undefined-export** -- an ``__all__`` entry naming nothing
  defined or imported at module level (ruff F822);
* **RA404 duplicate-definition** -- a module-level function/class
  defined twice (ruff F811).

``tools/lint.py`` is now a thin shim over this pass (preferring ``ruff
check`` when installed), so ``make lint`` behaviour is unchanged.
"""

from __future__ import annotations

import ast
import os
from typing import Dict, Iterator, List, Set, Tuple

from tools.analysis.core import Finding, Project, SourceFile


def collect_used_names(tree: ast.AST) -> Set[str]:
    """Every identifier the module references (including attribute roots
    and names quoted in ``__all__``-style string constants)."""
    used: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            used.add(node.id)
        elif isinstance(node, ast.Attribute):
            root = node
            while isinstance(root, ast.Attribute):
                root = root.value
            if isinstance(root, ast.Name):
                used.add(root.id)
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            used.add(node.value)  # __all__ entries, typing forward refs
    return used


def module_imports(tree: ast.Module) -> Iterator[Tuple[str, int]]:
    """Module-level ``(bound_name, lineno)`` pairs from import statements."""
    for node in tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield alias.asname or alias.name.partition(".")[0], \
                    node.lineno
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue  # compiler directives, not bindings to use
            for alias in node.names:
                if alias.name == "*":
                    continue
                yield alias.asname or alias.name, node.lineno


def module_definitions(tree: ast.Module) -> Set[str]:
    """Names bound at module level (defs, classes, assignments, imports)."""
    defined: Set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            defined.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                for child in ast.walk(target):
                    if isinstance(child, ast.Name):
                        defined.add(child.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target,
                                                            ast.Name):
            defined.add(node.target.id)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            defined.update(name for name, _ in module_imports(
                ast.Module(body=[node], type_ignores=[])))
    return defined


def dunder_all(tree: ast.Module) -> List[str]:
    for node in tree.body:
        if isinstance(node, ast.Assign):
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
            if "__all__" in targets:
                try:
                    value = ast.literal_eval(node.value)
                except ValueError:
                    return []
                return [entry for entry in value if isinstance(entry, str)]
    return []


def lint_file(source: SourceFile) -> List[Finding]:
    if source.tree is None:
        error = source.syntax_error
        return [Finding(
            rule="RA401", path=source.path,
            line=error.lineno or 1 if error else 1,
            message=f"syntax error: "
                    f"{error.msg if error else 'unparseable'}")]
    tree = source.tree
    findings: List[Finding] = []
    used = collect_used_names(tree)
    exported = set(dunder_all(tree))
    is_init = os.path.basename(source.path) == "__init__.py"

    if not is_init:  # re-exporting is an __init__ module's job
        for name, lineno in module_imports(tree):
            if name.startswith("_"):
                continue
            if name not in used and name not in exported:
                findings.append(Finding(
                    rule="RA402", path=source.path, line=lineno,
                    message=f"{name!r} is imported but never used"))

    defined = module_definitions(tree)
    for entry in dunder_all(tree):
        if entry not in defined:
            findings.append(Finding(
                rule="RA403", path=source.path, line=1,
                message=f"__all__ names {entry!r} which is not defined "
                        f"in the module"))

    seen: Dict[str, int] = {}
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            if node.name in seen:
                findings.append(Finding(
                    rule="RA404", path=source.path, line=node.lineno,
                    message=f"{node.name!r} already defined on line "
                            f"{seen[node.name]}"))
            seen[node.name] = node.lineno
    return findings


def run(project: Project) -> List[Finding]:
    config = project.config
    findings: List[Finding] = []
    for source in project.files:
        findings.extend(f for f in lint_file(source)
                        if config.rule_applies(f.rule, source.path))
    return findings
