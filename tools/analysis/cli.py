"""Command-line driver of the repo-specific static analyzer.

Usage (from the repo root)::

    python -m tools.analysis [paths ...]          # default: src tests tools
    python -m tools.analysis --select RA0         # determinism pass only
    python -m tools.analysis --json report.json   # CI artifact
    python -m tools.analysis --write-baseline     # accept current findings
    python -m tools.analysis --list-rules

Exit status: 0 clean (or everything baselined/suppressed), 1 new
findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from tools.analysis import baseline as baseline_module
from tools.analysis import (
    determinism,
    facade,
    lintpass,
    obspass,
    registry,
    schema,
)
from tools.analysis.core import RULES, Config, Finding, Project

DEFAULT_PATHS = ("src", "tests", "tools")

#: The passes, in report order.  Each is a module with
#: ``run(project) -> List[Finding]``.
PASSES = (determinism, schema, facade, registry, lintpass, obspass)


@dataclass
class AnalysisResult:
    """Outcome of one analyzer run (also the programmatic API's value)."""

    findings: List[Finding]            # new, reportable findings
    baselined: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    files_checked: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    def to_json_dict(self) -> dict:
        return {
            "schema": 1,
            "files_checked": self.files_checked,
            "counts": {
                "new": len(self.findings),
                "baselined": len(self.baselined),
                "suppressed": len(self.suppressed),
            },
            "findings": [f.to_dict() for f in self.findings],
            "baselined": [f.to_dict() for f in self.baselined],
        }


def analyze_paths(paths: Sequence[str], config: Optional[Config] = None,
                  baseline_keys: Optional[set] = None) -> AnalysisResult:
    """Run every enabled pass over ``paths`` and classify the findings."""
    config = config or Config()
    project = Project.load(paths, config)
    raw: List[Finding] = []
    for pass_module in PASSES:
        raw.extend(pass_module.run(project))
    raw.sort(key=lambda f: (f.path, f.line, f.rule, f.message))

    by_path = {source.path: source for source in project.files}
    suppressed, active = [], []
    for finding in raw:
        source = by_path.get(finding.path)
        if source is not None and source.suppresses(finding):
            suppressed.append(finding)
        else:
            active.append(finding)
    new, baselined = baseline_module.split(active, baseline_keys or set())
    return AnalysisResult(findings=new, baselined=baselined,
                          suppressed=suppressed,
                          files_checked=len(project.files))


def list_rules() -> str:
    lines = ["rule    name                       scope    summary"]
    for rule in RULES.values():
        lines.append(f"{rule.id}   {rule.name:<26} {rule.scope:<8} "
                     f"{rule.summary}")
    return "\n".join(lines)


def _parse_prefixes(text: Optional[str]):
    if text is None:
        return None
    return tuple(part.strip() for part in text.split(",") if part.strip())


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.analysis",
        description="Repo-specific static analysis: determinism, schema "
                    "round-trips, facade purity, registry hygiene, lint, "
                    "observability hygiene.")
    parser.add_argument("paths", nargs="*", default=list(DEFAULT_PATHS),
                        help="files/directories to analyze "
                             "(default: src tests tools)")
    parser.add_argument("--select", metavar="PREFIXES",
                        help="comma-separated rule-ID prefixes to run "
                             "(e.g. RA0,RA401)")
    parser.add_argument("--ignore", metavar="PREFIXES",
                        help="comma-separated rule-ID prefixes to skip")
    parser.add_argument("--library", metavar="PREFIXES",
                        help="comma-separated path prefixes treated as "
                             "library code (default: src/); "
                             "library-scope rules only fire there")
    parser.add_argument("--exclude", metavar="PATHS",
                        help="comma-separated paths to skip (default: "
                             "tests/analysis/fixtures; pass '' to "
                             "analyze everything)")
    parser.add_argument("--json", metavar="PATH", dest="json_path",
                        help="write a JSON findings report ('-' for "
                             "stdout)")
    parser.add_argument("--baseline",
                        default=baseline_module.DEFAULT_BASELINE,
                        help="baseline file (default: %(default)s)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="report baselined findings as new")
    parser.add_argument("--write-baseline", action="store_true",
                        help="accept all current findings into the "
                             "baseline file and exit 0")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    arguments = parser.parse_args(argv)

    if arguments.list_rules:
        print(list_rules())
        return 0

    missing = [path for path in arguments.paths if not os.path.exists(path)]
    if missing:
        print(f"analysis: no such path(s): {', '.join(missing)}",
              file=sys.stderr)
        return 2

    config = Config(select=_parse_prefixes(arguments.select),
                    ignore=_parse_prefixes(arguments.ignore) or ())
    if arguments.library is not None:
        config.library_prefixes = _parse_prefixes(arguments.library)
    if arguments.exclude is not None:
        config.exclude = _parse_prefixes(arguments.exclude)
    try:
        baseline_keys = (set() if arguments.no_baseline
                         else baseline_module.load(arguments.baseline))
    except ValueError as error:
        print(f"analysis: {error}", file=sys.stderr)
        return 2

    result = analyze_paths(arguments.paths, config, baseline_keys)

    if arguments.write_baseline:
        accepted = result.findings + result.baselined
        baseline_module.write(arguments.baseline, accepted)
        print(f"analysis: wrote {len({f.key for f in accepted})} "
              f"entr(ies) to {arguments.baseline}")
        return 0

    for finding in result.findings:
        print(finding.render())
    print(f"analysis: {result.files_checked} files checked, "
          f"{len(result.findings)} finding(s) "
          f"({len(result.baselined)} baselined, "
          f"{len(result.suppressed)} suppressed)")

    if arguments.json_path:
        payload = json.dumps(result.to_json_dict(), indent=2,
                             sort_keys=True) + "\n"
        if arguments.json_path == "-":
            sys.stdout.write(payload)
        else:
            with open(arguments.json_path, "w",
                      encoding="utf-8") as handle:
                handle.write(payload)
    return 0 if result.clean else 1
