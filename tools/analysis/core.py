"""Shared infrastructure of the repo-specific static analyzer.

The analyzer is organised as independent *passes* (one module each)
producing :class:`Finding` objects against a :class:`Project` -- the
parsed view of every Python file under the analyzed paths plus the
cross-file context some passes need (test sources, README text).

Everything here is deliberately dependency-free: the analyzer must run
on the same bare interpreter the rest of the tooling runs on.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple


# ----------------------------------------------------------------------
# Rules
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Rule:
    """One stable, individually toggleable rule.

    ``scope`` is ``"library"`` (findings only in files under the
    configured library prefixes, i.e. ``src/``) or ``"all"`` (every
    analyzed file) -- determinism and contract rules police shipped
    library code, the folded-in lint rules police the whole tree.
    """

    id: str
    name: str
    summary: str
    scope: str = "library"


#: The rule catalogue.  IDs are append-only and never reused: baselines,
#: suppression comments and CI artifacts all refer to them.
RULES: Dict[str, Rule] = {rule.id: rule for rule in (
    # determinism pass (RA0xx)
    Rule("RA001", "unordered-iteration",
         "iteration over a set/frozenset (or other unordered value) "
         "flows into an order-sensitive sink (list building, join, "
         "sum/accumulation, enumerate, hashing material); the result "
         "then depends on PYTHONHASHSEED"),
    Rule("RA002", "hash-ordering",
         "hash() or id() used as an ordering key (sorted/sort/min/max "
         "key=...); the order depends on the interpreter run"),
    Rule("RA003", "unseeded-random",
         "module-level random.* call in library code; use an explicit "
         "random.Random(seed) so workers and machines agree"),
    # schema-contract pass (RA1xx)
    Rule("RA101", "missing-roundtrip",
         "class defines to_dict without from_dict (or vice versa); "
         "every serialised schema must round-trip"),
    Rule("RA102", "roundtrip-fields",
         "dataclass field not covered by its to_dict/from_dict pair"),
    Rule("RA103", "stale-strip-list",
         "volatile-field strip list names a field no analyzed dataclass "
         "defines"),
    Rule("RA104", "fingerprint-schema",
         "fingerprint material hashed without a SCHEMA_VERSION in the "
         "material; schema bumps could no longer invalidate caches"),
    # facade-purity pass (RA2xx)
    Rule("RA201", "shim-constructed",
         "deprecated checker shim constructed outside repro.api / "
         "repro.engines / its defining module"),
    Rule("RA202", "facade-bypass",
         "CLI/runner/worker code reaches verification internals instead "
         "of going through repro.api"),
    Rule("RA203", "serve-facade-bypass",
         "repro.serve code imports or calls verification internals "
         "(engine modules, pipeline/checker classes) instead of the "
         "repro.api facade; the daemon is transport and caching only"),
    Rule("RA204", "delta-verdict-influence",
         "repro.delta code reaches verdict machinery (reports, property "
         "checks, the explicit oracle, synthesis) or pokes private "
         "engine state; delta warm-starts may only seed the traversal "
         "-- verdicts must be byte-identical to a cold run"),
    Rule("RA205", "fabric-stable-leak",
         "fabric scheduling metadata (lease/retry/fault/attempt "
         "identifiers or keys) referenced inside fingerprint or "
         "stable-view material; which holder computed a verdict, after "
         "how many retries and under what fault plan must never reach "
         "cache keys or the byte-identical stable results"),
    # registry-hygiene pass (RA3xx)
    Rule("RA301", "unexercised-registration",
         "name registered with register_check / engine / backend "
         "registries never appears under tests/"),
    Rule("RA302", "undocumented-registration",
         "registered name missing from the README tables"),
    # lint pass (RA4xx) -- the four rules folded in from tools/lint.py
    Rule("RA401", "syntax-error", "the file must parse", scope="all"),
    Rule("RA402", "unused-import",
         "module-level import never referenced and not re-exported "
         "(__init__ modules exempt)", scope="all"),
    Rule("RA403", "undefined-export",
         "__all__ names something not defined or imported at module "
         "level", scope="all"),
    Rule("RA404", "duplicate-definition",
         "module-level function/class defined twice", scope="all"),
    # observability-hygiene pass (RA5xx)
    Rule("RA501", "dynamic-span-name",
         "span/event/metric name is not a string literal; the report "
         "layer aggregates by name, so runtime-minted names fragment "
         "every breakdown (put variable data in keyword attributes)"),
    Rule("RA502", "traced-fingerprint",
         "obs emission inside a fingerprint / stable-view function; "
         "tracing and metrics must never feed cache keys or the "
         "byte-identical stable results"),
)}


@dataclass(frozen=True)
class Finding:
    """One reported rule violation."""

    rule: str
    path: str
    line: int
    message: str

    @property
    def key(self) -> Tuple[str, str, str]:
        """Baseline identity: line numbers shift, (rule, path, message)
        is stable across unrelated edits."""
        return (self.rule, self.path, self.message)

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {"rule": self.rule, "path": self.path,
                "line": self.line, "message": self.message}


# ----------------------------------------------------------------------
# Suppressions:  # repro: allow[RA001] reason
# ----------------------------------------------------------------------
_SUPPRESSION = re.compile(
    r"#\s*repro:\s*allow\[([A-Za-z0-9_,\s]+)\]\s*(.*)")


def suppressions_of(text: str) -> Dict[int, Set[str]]:
    """Map line number -> rule IDs suppressed there.

    An inline comment suppresses its own line; a standalone comment line
    suppresses the next line (so a suppression can sit above the code it
    excuses without fighting line length).
    """
    suppressed: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        match = _SUPPRESSION.search(line)
        if not match:
            continue
        rules = {part.strip() for part in match.group(1).split(",")
                 if part.strip()}
        target = lineno + 1 if line.lstrip().startswith("#") else lineno
        suppressed.setdefault(target, set()).update(rules)
    return suppressed


# ----------------------------------------------------------------------
# Files and the project
# ----------------------------------------------------------------------
@dataclass
class SourceFile:
    """One parsed Python file."""

    path: str                      # normalised, forward slashes
    text: str
    tree: Optional[ast.Module]     # None when the file does not parse
    syntax_error: Optional[SyntaxError] = None
    _suppressions: Optional[Dict[int, Set[str]]] = field(
        default=None, repr=False)

    @property
    def suppressions(self) -> Dict[int, Set[str]]:
        if self._suppressions is None:
            self._suppressions = suppressions_of(self.text)
        return self._suppressions

    def suppresses(self, finding: Finding) -> bool:
        return finding.rule in self.suppressions.get(finding.line, ())


@dataclass
class Config:
    """Analyzer configuration (CLI flags and test harness knobs)."""

    #: Path prefixes marking shipped library code; ``"library"``-scope
    #: rules only fire there.
    library_prefixes: Tuple[str, ...] = ("src/",)
    #: Relative paths skipped entirely.  The analyzer's own test fixtures
    #: intentionally contain violations, so they are out by default.
    exclude: Tuple[str, ...] = ("tests/analysis/fixtures",)
    #: Rule-ID prefixes to run (None = all) / to drop.
    select: Optional[Tuple[str, ...]] = None
    ignore: Tuple[str, ...] = ()
    #: Where the registry-hygiene pass looks for exercised/documented
    #: names; None disables the corresponding half of the pass.
    tests_root: Optional[str] = "tests"
    readme_path: Optional[str] = "README.md"

    def is_library(self, path: str) -> bool:
        return any(path.startswith(prefix)
                   for prefix in self.library_prefixes)

    def rule_enabled(self, rule_id: str) -> bool:
        if self.select is not None and not any(
                rule_id.startswith(prefix) for prefix in self.select):
            return False
        return not any(rule_id.startswith(prefix)
                       for prefix in self.ignore)

    def rule_applies(self, rule_id: str, path: str) -> bool:
        if not self.rule_enabled(rule_id):
            return False
        rule = RULES[rule_id]
        return rule.scope == "all" or self.is_library(path)


def normalise(path: str) -> str:
    """Repo-relative forward-slash form when possible (for stable
    baselines and readable reports)."""
    path = path.replace(os.sep, "/")
    cwd = os.getcwd().replace(os.sep, "/") + "/"
    absolute = os.path.abspath(path).replace(os.sep, "/")
    if absolute.startswith(cwd):
        return absolute[len(cwd):]
    return path


def iter_python_files(paths: Sequence[str],
                      config: Config) -> Iterator[str]:
    """Every ``.py`` file under ``paths``, sorted, excludes applied."""
    def excluded(rel: str) -> bool:
        padded = "/" + rel + "/"
        for pattern in config.exclude:
            if rel == pattern or rel.startswith(pattern + "/") \
                    or "/" + pattern + "/" in padded:
                return True
        return False

    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py") and not excluded(normalise(path)):
                yield path
            continue
        for root, dirs, files in os.walk(path):
            dirs[:] = sorted(d for d in dirs
                             if d != "__pycache__"
                             and not d.startswith("."))
            for name in sorted(files):
                if not name.endswith(".py"):
                    continue
                full = os.path.join(root, name)
                if not excluded(normalise(full)):
                    yield full


@dataclass
class Project:
    """The parsed view of one analyzer invocation."""

    files: List[SourceFile]
    config: Config

    @classmethod
    def load(cls, paths: Sequence[str], config: Config) -> "Project":
        files: List[SourceFile] = []
        for path in iter_python_files(paths, config):
            with open(path, encoding="utf-8") as handle:
                text = handle.read()
            try:
                tree: Optional[ast.Module] = ast.parse(text, filename=path)
                error: Optional[SyntaxError] = None
            except SyntaxError as exc:
                tree, error = None, exc
            files.append(SourceFile(path=normalise(path), text=text,
                                    tree=tree, syntax_error=error))
        return cls(files=files, config=config)

    def library_files(self) -> List[SourceFile]:
        return [f for f in self.files if self.config.is_library(f.path)]

    # ------------------------------------------------------------------
    # Cross-file context for the registry pass
    # ------------------------------------------------------------------
    def corpus_text(self, root: Optional[str]) -> str:
        """Concatenated text of every file under ``root`` (any kind)."""
        if root is None or not os.path.isdir(root):
            return ""
        chunks: List[str] = []
        for directory, dirs, files in os.walk(root):
            dirs[:] = sorted(d for d in dirs if d != "__pycache__"
                             and not d.startswith("."))
            for name in sorted(files):
                try:
                    with open(os.path.join(directory, name),
                              encoding="utf-8", errors="ignore") as handle:
                        chunks.append(handle.read())
                except OSError:
                    continue
        return "\n".join(chunks)


def parent_map(tree: ast.AST) -> Dict[ast.AST, ast.AST]:
    """Child -> parent for every node (sink rules look one level up)."""
    parents: Dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents
