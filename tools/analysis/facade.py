"""Facade-purity pass (RA201-RA204).

PR 3 demoted ``ImplementabilityChecker`` and ``ExplicitChecker`` to
deprecation shims over :func:`repro.api.run`; everything user-facing
(CLI, sweep runner, workers) must verify exclusively through the
``repro.api`` facade so engines, checks and configs stay pluggable.
This pass turns that convention into findings:

* **RA201** -- a module in ``src/repro`` (outside ``repro/api``,
  ``repro/engines`` and the shims' own defining modules) *constructs*
  one of the deprecated shims;
* **RA202** -- front-end code (``cli.py``, ``__main__.py``, anything
  under ``runner/``) imports or calls verification internals
  (``VerificationPipeline``, ``ExplicitVerification``, the shims)
  instead of going through ``repro.api``;
* **RA203** -- serve-daemon code (anything under ``serve/``) reaches
  verification machinery at all: importing from the engine modules
  (``repro.core``, ``repro.sg``, ``repro.engines``) or naming the
  internals directly.  The daemon layer is transport, queueing and
  caching only -- it verifies exclusively through the facade (via the
  :func:`repro.runner.worker.execute_payload_async` primitive), which
  is what keeps daemon verdicts byte-identical to batch-check runs;
* **RA204** -- incremental-verification code (anything under
  ``repro/delta/``) reaches verdict machinery: importing from
  ``repro.report``, ``repro.api.checks``, ``repro.sg`` (the explicit
  oracle) or ``repro.synthesis``, or assigning to an
  underscore-prefixed attribute of another object (private engine
  state).  The delta layer's entire influence on a run is the traversal
  seed it hands the pipeline through its public seeding attributes --
  that containment is what makes "delta verdicts are byte-identical to
  cold verdicts" an invariant rather than a hope.
* **RA205** -- fabric scheduling metadata inside fingerprint or
  stable-view material.  The lease coordinator stamps *how* a verdict
  was computed (lease holder, retry attempt, fault plan) into
  provenance, and provenance is stripped from stable views; a
  fingerprint or ``stable_dict``-family function that references a
  lease/retry/fault/attempt identifier, dict key or subscript would
  let scheduling history perturb cache keys or the byte-identical
  sweep contract.  Same function detection as RA502 (``fingerprint*``,
  ``stable_dict``, ``stable_json_dict``, ``stable_json``); only
  identifier-position tokens count, so prose in docstrings stays
  legal.
"""

from __future__ import annotations

import ast
from typing import List

from tools.analysis.core import Finding, Project, SourceFile

#: The PR-3 deprecation shims: constructing one outside the facade
#: layer reintroduces the pre-facade call surface.
DEPRECATED_SHIMS = ("ImplementabilityChecker", "ExplicitChecker")

#: Engine-internal verification entry points front-end code must not
#: touch (the facade threads them through the engine registry).
VERIFICATION_INTERNALS = DEPRECATED_SHIMS + (
    "VerificationPipeline", "ExplicitVerification")

#: Modules allowed to name the shims: the facade layer, the engine
#: adapters, the defining modules themselves and the package __init__
#: re-exports that keep the deprecated import paths alive.
_SHIM_ALLOWED_FRAGMENTS = (
    "repro/api/", "repro/engines", "repro/core/checker",
    "repro/sg/checker", "__init__")

#: Front-end modules bound to the facade-only contract.
_FRONTEND_FRAGMENTS = ("repro/cli", "repro/__main__", "repro/runner/")

#: Serve-daemon modules bound to the stricter RA203 contract: no
#: verification machinery at all, not even the engine registry.
_SERVE_FRAGMENTS = ("repro/serve/",)

#: Module prefixes the serve layer must not import from.
_SERVE_FORBIDDEN_MODULES = ("repro.core", "repro.sg", "repro.engines")

#: Incremental-verification modules bound to the RA204 contract: they
#: may only seed the traversal, never touch verdict machinery.
_DELTA_FRAGMENTS = ("repro/delta/",)

#: Module prefixes the delta layer must not import from: everything
#: that produces or represents verdicts.  (The traversal/encoding/BDD
#: layers are fair game -- seeds are made of those.)
_DELTA_FORBIDDEN_MODULES = ("repro.report", "repro.api.checks",
                            "repro.sg", "repro.synthesis")


#: Functions whose bodies are fingerprint / stable-view material (the
#: same set the RA502 obs pass polices).
_STABLE_VIEW_NAMES = ("stable_dict", "stable_json_dict", "stable_json")
_STABLE_VIEW_FRAGMENT = "fingerprint"

#: Snake-case tokens that mark an identifier (or string key) as fabric
#: scheduling metadata.  Token-wise matching, not substring: ``holder``
#: flags, ``placeholder`` does not.
_FABRIC_TOKENS = frozenset((
    "lease", "leases", "retry", "retries", "fault", "faults",
    "attempt", "attempts", "holder", "backoff"))


def _shim_allowed(path: str) -> bool:
    return any(fragment in path for fragment in _SHIM_ALLOWED_FRAGMENTS)


def _is_frontend(path: str) -> bool:
    return any(fragment in path for fragment in _FRONTEND_FRAGMENTS)


def _is_serve(path: str) -> bool:
    return any(fragment in path for fragment in _SERVE_FRAGMENTS)


def _is_delta(path: str) -> bool:
    return any(fragment in path for fragment in _DELTA_FRAGMENTS)


def _serve_forbidden_module(module: str) -> bool:
    return any(module == prefix or module.startswith(prefix + ".")
               for prefix in _SERVE_FORBIDDEN_MODULES)


def _delta_forbidden_module(module: str) -> bool:
    return any(module == prefix or module.startswith(prefix + ".")
               for prefix in _DELTA_FORBIDDEN_MODULES)


def _is_stable_view_function(name: str) -> bool:
    return name in _STABLE_VIEW_NAMES or _STABLE_VIEW_FRAGMENT in name


def _fabric_token_of(identifier: str) -> str:
    """The first fabric token in a snake_case identifier, or ``""``."""
    for token in identifier.lower().split("_"):
        if token in _FABRIC_TOKENS:
            return token
    return ""


def _fabric_identifiers(node: ast.AST):
    """``(identifier, lineno)`` pairs of fabric-flavoured references.

    Only identifier positions count -- names, attributes, parameters,
    keyword arguments, string subscripts and string dict keys.  Bare
    string constants (docstrings, messages) never flag.
    """
    for inner in ast.walk(node):
        if isinstance(inner, ast.Name):
            candidates = [(inner.id, inner.lineno)]
        elif isinstance(inner, ast.Attribute):
            candidates = [(inner.attr, inner.lineno)]
        elif isinstance(inner, ast.arg):
            candidates = [(inner.arg, inner.lineno)]
        elif isinstance(inner, ast.keyword) and inner.arg is not None:
            candidates = [(inner.arg, inner.value.lineno)]
        elif isinstance(inner, ast.Subscript) \
                and isinstance(inner.slice, ast.Constant) \
                and isinstance(inner.slice.value, str):
            candidates = [(inner.slice.value, inner.lineno)]
        elif isinstance(inner, ast.Dict):
            candidates = [(key.value, key.lineno) for key in inner.keys
                          if isinstance(key, ast.Constant)
                          and isinstance(key.value, str)]
        else:
            continue
        for identifier, lineno in candidates:
            if _fabric_token_of(identifier):
                yield identifier, lineno


def _check_stable_views(source: SourceFile,
                        findings: List[Finding]) -> None:
    """RA205: fingerprint / stable-view functions never reference
    fabric scheduling metadata."""
    assert source.tree is not None
    for node in ast.walk(source.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if not _is_stable_view_function(node.name):
            continue
        reported = set()
        for identifier, lineno in _fabric_identifiers(node):
            # One finding per line: a leaking assignment often carries
            # several flagged identifiers (key, attribute, receiver).
            if lineno in reported:
                continue
            reported.add(lineno)
            findings.append(Finding(
                rule="RA205", path=source.path, line=lineno,
                message=f"{node.name}() references fabric scheduling "
                        f"metadata {identifier!r}; lease/retry/fault "
                        f"provenance must never reach fingerprints or "
                        f"stable views"))


def _check_file(source: SourceFile, findings: List[Finding]) -> None:
    assert source.tree is not None
    frontend = _is_frontend(source.path)
    serve = _is_serve(source.path)
    if _is_delta(source.path):
        _check_delta_file(source, findings)
    _check_stable_views(source, findings)
    for node in ast.walk(source.tree):
        if isinstance(node, ast.Call):
            func = node.func
            name = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else None)
            if name in DEPRECATED_SHIMS and not _shim_allowed(source.path):
                findings.append(Finding(
                    rule="RA201", path=source.path, line=node.lineno,
                    message=f"{name} is a deprecation shim; construct "
                            f"verification through repro.api.run / "
                            f"repro.api.verify instead"))
            elif serve and name in VERIFICATION_INTERNALS:
                findings.append(Finding(
                    rule="RA203", path=source.path, line=node.lineno,
                    message=f"serve-daemon code calls {name} directly; "
                            f"the daemon verifies only through the "
                            f"repro.api facade (via the worker "
                            f"primitive)"))
            elif frontend and name in VERIFICATION_INTERNALS:
                findings.append(Finding(
                    rule="RA202", path=source.path, line=node.lineno,
                    message=f"front-end code calls {name} directly; "
                            f"go through the repro.api facade"))
        elif isinstance(node, (ast.Import, ast.ImportFrom)) and serve:
            _check_serve_import(source, node, findings)
        elif isinstance(node, ast.ImportFrom) and frontend:
            module = node.module or ""
            if module.startswith("repro.api"):
                continue
            for alias in node.names:
                if alias.name in VERIFICATION_INTERNALS:
                    findings.append(Finding(
                        rule="RA202", path=source.path, line=node.lineno,
                        message=f"front-end code imports {alias.name} "
                                f"from {module}; verification goes "
                                f"through repro.api only"))


def _check_serve_import(source: SourceFile, node, findings:
                        List[Finding]) -> None:
    """RA203 on imports: serve code must not touch engine modules."""
    if isinstance(node, ast.Import):
        for alias in node.names:
            if _serve_forbidden_module(alias.name):
                findings.append(Finding(
                    rule="RA203", path=source.path, line=node.lineno,
                    message=f"serve-daemon code imports {alias.name}; "
                            f"the serve layer is transport and caching "
                            f"only -- verification goes through "
                            f"repro.api"))
        return
    module = node.module or ""
    if _serve_forbidden_module(module):
        findings.append(Finding(
            rule="RA203", path=source.path, line=node.lineno,
            message=f"serve-daemon code imports from {module}; the "
                    f"serve layer is transport and caching only -- "
                    f"verification goes through repro.api"))
        return
    for alias in node.names:
        if alias.name in VERIFICATION_INTERNALS:
            findings.append(Finding(
                rule="RA203", path=source.path, line=node.lineno,
                message=f"serve-daemon code imports {alias.name} from "
                        f"{module}; verification goes through "
                        f"repro.api only"))


def _check_delta_file(source: SourceFile,
                      findings: List[Finding]) -> None:
    """RA204: delta code seeds traversals; it never touches verdicts.

    Two concrete teeth: no imports from the verdict-producing modules,
    and no assignment to an underscore-prefixed attribute of another
    object (``self``/``cls`` excepted -- a module's own private state
    is its own business).  Writing the pipeline's *public* seeding
    attributes (``seed_reached`` and friends) is exactly the sanctioned
    channel, so it passes by construction.
    """
    assert source.tree is not None
    for node in ast.walk(source.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if _delta_forbidden_module(alias.name):
                    findings.append(_delta_import_finding(
                        source, node, alias.name))
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if _delta_forbidden_module(module):
                findings.append(_delta_import_finding(
                    source, node, module))
        elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                if (isinstance(target, ast.Attribute)
                        and target.attr.startswith("_")
                        and not (isinstance(target.value, ast.Name)
                                 and target.value.id in ("self", "cls"))):
                    findings.append(Finding(
                        rule="RA204", path=source.path, line=node.lineno,
                        message=f"delta code assigns the private "
                                f"attribute .{target.attr} of another "
                                f"object; delta warm-starts influence a "
                                f"run only through the pipeline's "
                                f"public seeding attributes"))


def _delta_import_finding(source: SourceFile, node,
                          module: str) -> Finding:
    return Finding(
        rule="RA204", path=source.path, line=node.lineno,
        message=f"delta code imports from {module}; the delta layer "
                f"seeds traversals only -- verdict machinery (reports, "
                f"checks, the explicit oracle, synthesis) is off "
                f"limits")


def run(project: Project) -> List[Finding]:
    config = project.config
    findings: List[Finding] = []
    for source in project.files:
        if source.tree is None or not config.is_library(source.path):
            continue
        _check_file(source, findings)
    return [f for f in findings if config.rule_applies(f.rule, f.path)]
