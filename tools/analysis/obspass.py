"""Observability-hygiene pass (RA501-RA502).

PR 7 added :mod:`repro.obs` -- tracing spans, events and metrics
instrumented through the verification stack.  Two conventions keep that
subsystem sound, and this pass turns them into findings:

* **RA501** -- span/event/metric *names must be string literals* at the
  emission site (``obs.span("traversal")``, never
  ``obs.span(f"check-{name}")``).  The report layer aggregates by name
  (:func:`repro.obs.report.stage_breakdown`), so a name minted at
  runtime fragments every breakdown table and makes cross-run merges
  meaningless; variable data belongs in the keyword attributes
  (``obs.span("check", check=name)``).
* **RA502** -- *no emission inside fingerprint material*.  Trace and
  metric calls inside a function that computes fingerprints or the
  stable result view (``fingerprint*``, ``stable_dict``,
  ``stable_json_dict``) could let observability perturb cache keys or
  the byte-identical sweep contract; the whole subsystem is built on
  the promise that tracing never changes a verdict or a key.

The :mod:`repro.obs` package itself is exempt from RA501: the tracer's
internals forward caller-supplied names through variables by design
(the literal-name contract binds *emission sites*, not the substrate).
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set

from tools.analysis.core import Finding, Project, SourceFile

#: Emission methods whose first argument is the aggregation name.
_SPAN_METHODS = ("span", "event")
#: Metric factory/lookup methods on a registry; same literal-name rule.
_METRIC_METHODS = ("counter", "gauge", "histogram")

#: Receivers recognised as the tracing surface: ``obs.span(...)``,
#: ``tracer.event(...)``, ``self.tracer.span(...)``.
_TRACER_RECEIVERS = ("obs", "tracer")
#: Receivers recognised as the metrics surface: ``metrics.counter(...)``,
#: ``self.metrics.gauge(...)``, ``registry.histogram(...)``.
_METRIC_RECEIVERS = ("metrics", "registry")

#: The substrate itself forwards names through variables by design.
_SUBSTRATE_FRAGMENT = "repro/obs/"

#: Functions whose bodies are fingerprint / stable-view material.
_FINGERPRINT_NAMES = ("stable_dict", "stable_json_dict", "stable_json")
_FINGERPRINT_FRAGMENT = "fingerprint"


def _receiver_name(func: ast.expr) -> Optional[str]:
    """The base identifier of an attribute call's receiver chain."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return _receiver_name(func.value)
    return None


def _obs_imports(tree: ast.Module) -> Set[str]:
    """Names bound by ``from repro.obs import span, event, ...``."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module and (
                node.module == "repro.obs"
                or node.module.startswith("repro.obs.")):
            for alias in node.names:
                names.add(alias.asname or alias.name)
    return names


def _emission_kind(node: ast.Call, imported: Set[str]) -> Optional[str]:
    """``"span"``/``"event"``/a metric method when the call is an obs
    emission site, else None."""
    func = node.func
    if isinstance(func, ast.Attribute):
        receiver = _receiver_name(func.value)
        if func.attr in _SPAN_METHODS and receiver is not None and any(
                part in _TRACER_RECEIVERS
                for part in (receiver, receiver.lstrip("_"))):
            return func.attr
        if func.attr in _METRIC_METHODS and receiver is not None and any(
                fragment in receiver.lower()
                for fragment in _METRIC_RECEIVERS):
            return func.attr
        return None
    if isinstance(func, ast.Name) and func.id in imported \
            and func.id in _SPAN_METHODS + _METRIC_METHODS:
        return func.id
    return None


def _literal_name(node: ast.Call) -> bool:
    """True when the emission's name argument is a string literal."""
    if not node.args:
        # No positional name (e.g. a keyword form) -- nothing dynamic.
        return True
    first = node.args[0]
    return isinstance(first, ast.Constant) and isinstance(first.value, str)


def _is_fingerprint_function(name: str) -> bool:
    return name in _FINGERPRINT_NAMES or _FINGERPRINT_FRAGMENT in name


def _check_file(source: SourceFile, findings: List[Finding]) -> None:
    assert source.tree is not None
    substrate = _SUBSTRATE_FRAGMENT in source.path
    imported = _obs_imports(source.tree)

    # RA501: every emission site names its span/event/metric literally.
    if not substrate:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            kind = _emission_kind(node, imported)
            if kind is not None and not _literal_name(node):
                findings.append(Finding(
                    rule="RA501", path=source.path, line=node.lineno,
                    message=f"{kind} name must be a string literal "
                            f"(aggregation is by name; put variable "
                            f"data in keyword attributes)"))

    # RA502: no emission inside fingerprint / stable-view functions.
    for node in ast.walk(source.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if not _is_fingerprint_function(node.name):
            continue
        for inner in ast.walk(node):
            if isinstance(inner, ast.Call) \
                    and _emission_kind(inner, imported) is not None:
                findings.append(Finding(
                    rule="RA502", path=source.path, line=inner.lineno,
                    message=f"obs emission inside {node.name}(); "
                            f"tracing and metrics must never feed "
                            f"fingerprints or the stable result view"))


def run(project: Project) -> List[Finding]:
    config = project.config
    findings: List[Finding] = []
    for source in project.files:
        if source.tree is None or not config.is_library(source.path):
            continue
        _check_file(source, findings)
    return [f for f in findings if config.rule_applies(f.rule, f.path)]
