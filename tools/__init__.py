"""Developer tooling (``tools.analysis`` is importable as a package;
the other entries are standalone scripts run by the Makefile)."""
