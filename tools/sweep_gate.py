#!/usr/bin/env python
"""The sweep gate: backend parity + shard/merge reproduction, locally.

This is the off-GitHub mirror of the ``sweep`` and ``merge`` jobs of
``.github/workflows/ci.yml`` (``make ci`` runs it after lint and tests),
so the distributed-sweep contract is checkable on any machine:

1. **Backend parity** -- the same plan swept on every registered built-in
   backend (``process``, ``thread``, ``serial``, ``asyncio``) must
   produce byte-identical stable JSON (``batch-check --stable-json``).
   The ``asyncio`` leg is what gates the ``repro.serve`` daemon's
   execution path: the daemon schedules jobs through exactly the
   primitive this backend wraps.
2. **Shard/merge reproduction** -- the corpus swept as four separate
   ``--shard i/4`` runs (rotating through the backends, each into its
   own run store) and recombined with ``batch-check --merge`` must
   reproduce the unsharded reference sweep byte for byte.
3. **BDD-cache parity** -- the same sweep with no ``--bdd-cache``,
   against a cold BDD store, and against the warm store must produce
   byte-identical stable JSON: a served reachable set must reproduce
   the cold verdicts exactly (only timing fields may differ, and those
   are excluded from the stable view).
4. **Trace parity** -- the same sweep untraced and with ``--trace DIR``
   must produce byte-identical stable JSON (and the traced run must
   actually write per-entry trace files): observability is excluded
   from fingerprints and can never perturb a verdict.

Every ``batch-check`` call is a real subprocess with a *different*
``PYTHONHASHSEED``, so the gate also proves the stable output is
independent of interpreter hash randomisation -- the property that makes
cross-machine sharding sound.

Exit status: 0 when every comparison holds, 1 otherwise.
"""

from __future__ import annotations

import os
import shutil
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

BACKENDS = ("process", "thread", "serial", "asyncio")
#: Backend used by shard i of the 4-way partition (each backend at least
#: once, mirroring the CI matrix).
SHARD_BACKENDS = ("process", "thread", "serial", "asyncio")


def batch_check(arguments, seed):
    """Run ``python -m repro batch-check ...`` in a fresh interpreter."""
    environment = dict(os.environ)
    environment["PYTHONPATH"] = (
        os.path.join(REPO_ROOT, "src")
        + (os.pathsep + environment["PYTHONPATH"]
           if environment.get("PYTHONPATH") else ""))
    environment["PYTHONHASHSEED"] = str(seed)
    command = [sys.executable, "-m", "repro", "batch-check", *arguments]
    completed = subprocess.run(
        command, env=environment, cwd=REPO_ROOT,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    if completed.returncode != 0:
        print(completed.stdout)
        raise SystemExit(
            f"sweep-gate: {' '.join(command)} exited "
            f"{completed.returncode}")
    return completed.stdout


def read(path):
    with open(path, "rb") as handle:
        return handle.read()


def check_backend_parity(workdir):
    print("sweep-gate: backend parity "
          f"({', '.join(BACKENDS)}, full corpus) ...")
    outputs = {}
    for seed, backend in enumerate(BACKENDS, start=1):
        path = os.path.join(workdir, f"backend-{backend}.json")
        batch_check(["--backend", backend, "--jobs", "2",
                     "--stable-json", path], seed=seed)
        outputs[backend] = read(path)
    reference = outputs[BACKENDS[0]]
    for backend in BACKENDS[1:]:
        if outputs[backend] != reference:
            print(f"sweep-gate: FAIL: backend {backend!r} stable JSON "
                  f"differs from {BACKENDS[0]!r}")
            return False
    print(f"sweep-gate: ok: {len(BACKENDS)} backends byte-identical "
          f"({len(reference)} bytes of stable JSON)")
    return True


def check_shard_merge(workdir):
    print("sweep-gate: 4-way shard sweep + merge vs unsharded "
          "reference ...")
    stores = []
    for index, backend in enumerate(SHARD_BACKENDS):
        store = os.path.join(workdir, f"shard-{index}")
        stores.append(store)
        batch_check(["--shard", f"{index}/4", "--jobs", "2",
                     "--backend", backend, "--cache-dir", store],
                    seed=100 + index)
    merged_path = os.path.join(workdir, "merged.json")
    batch_check(["--merge", *stores,
                 "--cache-dir", os.path.join(workdir, "merged-store"),
                 "--stable-json", merged_path], seed=200)
    reference_path = os.path.join(workdir, "reference.json")
    batch_check(["--stable-json", reference_path], seed=300)
    if read(merged_path) != read(reference_path):
        print("sweep-gate: FAIL: merged shard stores do not reproduce "
              "the unsharded reference sweep")
        return False
    print("sweep-gate: ok: merge of 4 shard stores reproduces the "
          "unsharded sweep byte for byte")
    return True


def check_bdd_cache_parity(workdir):
    print("sweep-gate: BDD-cache parity (off vs cold vs warm store) ...")
    store = os.path.join(workdir, "bdd-store")
    outputs = {}
    for seed, (label, arguments) in enumerate((
            ("off", []),
            ("cold", ["--bdd-cache", store]),
            ("warm", ["--bdd-cache", store])), start=500):
        path = os.path.join(workdir, f"bdd-{label}.json")
        batch_check([*arguments, "--jobs", "2", "--stable-json", path],
                    seed=seed)
        outputs[label] = read(path)
    for label in ("cold", "warm"):
        if outputs[label] != outputs["off"]:
            print(f"sweep-gate: FAIL: stable JSON with the {label} BDD "
                  f"cache differs from the cache-free sweep")
            return False
    print("sweep-gate: ok: BDD cache off/cold/warm byte-identical")
    return True


def check_trace_parity(workdir):
    print("sweep-gate: trace parity (untraced vs --trace sweep) ...")
    trace_dir = os.path.join(workdir, "traces")
    outputs = {}
    for seed, (label, arguments) in enumerate((
            ("untraced", []),
            ("traced", ["--trace", trace_dir])), start=700):
        path = os.path.join(workdir, f"trace-{label}.json")
        batch_check([*arguments, "--jobs", "2", "--stable-json", path],
                    seed=seed)
        outputs[label] = read(path)
    if outputs["traced"] != outputs["untraced"]:
        print("sweep-gate: FAIL: stable JSON differs with --trace on; "
              "observability leaked into the results")
        return False
    traces = [name for name in os.listdir(trace_dir)
              if name.endswith(".jsonl")] if os.path.isdir(trace_dir) else []
    if not traces:
        print("sweep-gate: FAIL: --trace produced no per-entry trace "
              "files")
        return False
    print(f"sweep-gate: ok: traced sweep byte-identical to untraced "
          f"({len(traces)} per-entry trace files written)")
    return True


def main():
    workdir = tempfile.mkdtemp(prefix="repro-sweep-gate-")
    try:
        passed = check_backend_parity(workdir)
        passed = check_shard_merge(workdir) and passed
        passed = check_bdd_cache_parity(workdir) and passed
        passed = check_trace_parity(workdir) and passed
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    if not passed:
        return 1
    print("sweep-gate: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
