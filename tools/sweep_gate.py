#!/usr/bin/env python
"""The sweep gate: backend parity + shard/merge reproduction, locally.

This is the off-GitHub mirror of the ``sweep`` and ``merge`` jobs of
``.github/workflows/ci.yml`` (``make ci`` runs it after lint and tests),
so the distributed-sweep contract is checkable on any machine:

1. **Backend parity** -- the same plan swept on every registered built-in
   backend (``process``, ``thread``, ``serial``, ``asyncio``) must
   produce byte-identical stable JSON (``batch-check --stable-json``).
   The ``asyncio`` leg is what gates the ``repro.serve`` daemon's
   execution path: the daemon schedules jobs through exactly the
   primitive this backend wraps.
2. **Shard/merge reproduction** -- the corpus swept as four separate
   ``--shard i/4`` runs (rotating through the backends, each into its
   own run store) and recombined with ``batch-check --merge`` must
   reproduce the unsharded reference sweep byte for byte.
3. **BDD-cache parity** -- the same sweep with no ``--bdd-cache``,
   against a cold BDD store, and against the warm store must produce
   byte-identical stable JSON: a served reachable set must reproduce
   the cold verdicts exactly (only timing fields may differ, and those
   are excluded from the stable view).
4. **Trace parity** -- the same sweep untraced and with ``--trace DIR``
   must produce byte-identical stable JSON (and the traced run must
   actually write per-entry trace files): observability is excluded
   from fingerprints and can never perturb a verdict.
5. **Delta parity** -- an edited specification re-checked with
   ``--base`` (the incremental-verification warm start seeding the
   traversal from the cached base entry) must produce stable JSON
   byte-identical to a cold re-check, report the seed reuse tier, and
   leave the base entry intact for further edits of the same model.
6. **Chaos parity** -- the corpus swept through the lease coordinator
   (``--leases``) under deterministic fault injection
   (``--inject-faults``: worker crashes, hangs, torn store writes,
   renewal stalls) with retry/backoff (``--retry``) must produce
   stable JSON byte-identical to the clean serial sweep, and every
   injected fault class must be visible in the coordinator's
   ``fabric.retry.*`` metrics -- the proof that the fault tolerance
   actually engaged rather than the dice all missing.

Every ``batch-check`` call is a real subprocess with a *different*
``PYTHONHASHSEED``, so the gate also proves the stable output is
independent of interpreter hash randomisation -- the property that makes
cross-machine sharding sound.

Exit status: 0 when every comparison holds, 1 otherwise.
"""

from __future__ import annotations

import os
import shutil
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

BACKENDS = ("process", "thread", "serial", "asyncio")
#: Backend used by shard i of the 4-way partition (each backend at least
#: once, mirroring the CI matrix).
SHARD_BACKENDS = ("process", "thread", "serial", "asyncio")


def run_repro(arguments, seed):
    """Run ``python -m repro ...`` in a fresh interpreter."""
    environment = dict(os.environ)
    environment["PYTHONPATH"] = (
        os.path.join(REPO_ROOT, "src")
        + (os.pathsep + environment["PYTHONPATH"]
           if environment.get("PYTHONPATH") else ""))
    environment["PYTHONHASHSEED"] = str(seed)
    command = [sys.executable, "-m", "repro", *arguments]
    completed = subprocess.run(
        command, env=environment, cwd=REPO_ROOT,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    if completed.returncode != 0:
        print(completed.stdout)
        raise SystemExit(
            f"sweep-gate: {' '.join(command)} exited "
            f"{completed.returncode}")
    return completed.stdout


def batch_check(arguments, seed):
    """Run ``python -m repro batch-check ...`` in a fresh interpreter."""
    return run_repro(["batch-check", *arguments], seed)


def read(path):
    with open(path, "rb") as handle:
        return handle.read()


def check_backend_parity(workdir):
    print("sweep-gate: backend parity "
          f"({', '.join(BACKENDS)}, full corpus) ...")
    outputs = {}
    for seed, backend in enumerate(BACKENDS, start=1):
        path = os.path.join(workdir, f"backend-{backend}.json")
        batch_check(["--backend", backend, "--jobs", "2",
                     "--stable-json", path], seed=seed)
        outputs[backend] = read(path)
    reference = outputs[BACKENDS[0]]
    for backend in BACKENDS[1:]:
        if outputs[backend] != reference:
            print(f"sweep-gate: FAIL: backend {backend!r} stable JSON "
                  f"differs from {BACKENDS[0]!r}")
            return False
    print(f"sweep-gate: ok: {len(BACKENDS)} backends byte-identical "
          f"({len(reference)} bytes of stable JSON)")
    return True


def check_shard_merge(workdir):
    print("sweep-gate: 4-way shard sweep + merge vs unsharded "
          "reference ...")
    stores = []
    for index, backend in enumerate(SHARD_BACKENDS):
        store = os.path.join(workdir, f"shard-{index}")
        stores.append(store)
        batch_check(["--shard", f"{index}/4", "--jobs", "2",
                     "--backend", backend, "--cache-dir", store],
                    seed=100 + index)
    merged_path = os.path.join(workdir, "merged.json")
    batch_check(["--merge", *stores,
                 "--cache-dir", os.path.join(workdir, "merged-store"),
                 "--stable-json", merged_path], seed=200)
    reference_path = os.path.join(workdir, "reference.json")
    batch_check(["--stable-json", reference_path], seed=300)
    if read(merged_path) != read(reference_path):
        print("sweep-gate: FAIL: merged shard stores do not reproduce "
              "the unsharded reference sweep")
        return False
    print("sweep-gate: ok: merge of 4 shard stores reproduces the "
          "unsharded sweep byte for byte")
    return True


def check_bdd_cache_parity(workdir):
    print("sweep-gate: BDD-cache parity (off vs cold vs warm store) ...")
    store = os.path.join(workdir, "bdd-store")
    outputs = {}
    for seed, (label, arguments) in enumerate((
            ("off", []),
            ("cold", ["--bdd-cache", store]),
            ("warm", ["--bdd-cache", store])), start=500):
        path = os.path.join(workdir, f"bdd-{label}.json")
        batch_check([*arguments, "--jobs", "2", "--stable-json", path],
                    seed=seed)
        outputs[label] = read(path)
    for label in ("cold", "warm"):
        if outputs[label] != outputs["off"]:
            print(f"sweep-gate: FAIL: stable JSON with the {label} BDD "
                  f"cache differs from the cache-free sweep")
            return False
    print("sweep-gate: ok: BDD cache off/cold/warm byte-identical")
    return True


def check_trace_parity(workdir):
    print("sweep-gate: trace parity (untraced vs --trace sweep) ...")
    trace_dir = os.path.join(workdir, "traces")
    outputs = {}
    for seed, (label, arguments) in enumerate((
            ("untraced", []),
            ("traced", ["--trace", trace_dir])), start=700):
        path = os.path.join(workdir, f"trace-{label}.json")
        batch_check([*arguments, "--jobs", "2", "--stable-json", path],
                    seed=seed)
        outputs[label] = read(path)
    if outputs["traced"] != outputs["untraced"]:
        print("sweep-gate: FAIL: stable JSON differs with --trace on; "
              "observability leaked into the results")
        return False
    traces = [name for name in os.listdir(trace_dir)
              if name.endswith(".jsonl")] if os.path.isdir(trace_dir) else []
    if not traces:
        print("sweep-gate: FAIL: --trace produced no per-entry trace "
              "files")
        return False
    print(f"sweep-gate: ok: traced sweep byte-identical to untraced "
          f"({len(traces)} per-entry trace files written)")
    return True


def write_delta_specs(workdir):
    """The base and two edited specs of the delta leg, as ``.g`` files.

    Both edits keep the base's ``.model`` name -- the realistic editor
    loop, where a saved file is re-checked in place -- and add a
    disconnected two-phase probe cycle on a fresh internal signal (the
    canonical seed-tier shape).  Generation is in-process (the writer is
    deterministic); every *verification* below runs in a
    hash-seed-varied subprocess.
    """
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    try:
        from repro.stg.generators import build_example
        from repro.stg.parser import parse_g
        from repro.stg.stg import SignalKind
        from repro.stg.writer import to_g_string
    finally:
        sys.path.pop(0)

    base = build_example("muller_pipeline", 6)
    paths = [os.path.join(workdir, "base.g")]
    with open(paths[0], "w", encoding="utf-8") as handle:
        handle.write(to_g_string(base))

    for signal in ("xprobe", "yprobe"):
        edited = parse_g(to_g_string(base))
        rising, falling = f"{signal}+", f"{signal}-"
        p0, p1 = f"p_{signal}0", f"p_{signal}1"
        edited.add_signal(signal, SignalKind.INTERNAL,
                          initial_value=False)
        edited.add_place(p0, tokens=1)
        edited.add_place(p1)
        edited.add_transition(rising)
        edited.add_transition(falling)
        for arc in ((p0, rising), (rising, p1),
                    (p1, falling), (falling, p0)):
            edited.add_arc(*arc)
        paths.append(os.path.join(workdir, f"edited-{signal}.g"))
        with open(paths[-1], "w", encoding="utf-8") as handle:
            handle.write(to_g_string(edited))
    return paths


def check_delta_parity(workdir):
    print("sweep-gate: delta parity (cold re-check vs --base "
          "warm-started re-check) ...")
    base_path, edit1_path, edit2_path = write_delta_specs(workdir)
    store = os.path.join(workdir, "delta-bdd-store")
    cold_path = os.path.join(workdir, "delta-cold.json")
    delta_path = os.path.join(workdir, "delta-warm.json")

    run_repro([edit1_path, "--stable-json", cold_path], seed=901)
    run_repro([base_path, "--bdd-cache", store], seed=903)  # populate
    stdout = run_repro([edit1_path, "--bdd-cache", store,
                        "--base", base_path,
                        "--stable-json", delta_path], seed=905)
    if "delta: tier seed" not in stdout:
        print("sweep-gate: FAIL: the --base re-check did not report the "
              "seed reuse tier (the warm start never engaged)")
        return False
    if read(delta_path) != read(cold_path):
        print("sweep-gate: FAIL: --base warm-started stable JSON "
              "differs from the cold re-check")
        return False
    # A second, different edit against the same base: the first edit's
    # run shares the base's model name, so this only seeds if its
    # persistence did not evict the base entry.
    stdout = run_repro([edit2_path, "--bdd-cache", store,
                        "--base", base_path], seed=907)
    if "delta: tier seed" not in stdout:
        print("sweep-gate: FAIL: the base entry did not survive the "
              "first edit's run (second re-check fell back to cold)")
        return False
    print("sweep-gate: ok: seed-tier warm starts byte-identical to the "
          "cold re-check, base entry survives the edit loop")
    return True


#: The chaos leg's dials.  The fault rates and seed are chosen so that
#: over the full corpus every fault class actually fires (the gate
#: asserts it); the retry budget covers the worst per-entry draw; the
#: short lease makes torn-write steals cheap.  All decisions are
#: sha256-seeded, so the leg is reproducible across machines and
#: PYTHONHASHSEED values.
CHAOS_FAULT_SPEC = "crash=0.25,hang=0.25,truncate=0.2,stall=0.2,seed=11"
CHAOS_RETRY_SPEC = "attempts=4,base=0.01,max=0.02,seed=1"
CHAOS_LEASE_DURATION = "0.4"
#: Metrics that must be non-zero after the chaos sweep: one per
#: injected fault class (crash -> error retries, hang -> timeout
#: retries, torn write -> truncated re-issues, renewal stall ->
#: stalled re-issues).
CHAOS_REQUIRED_METRICS = ("fabric.retry.error", "fabric.retry.timeout",
                          "fabric.retry.truncated",
                          "fabric.retry.stalled")


def check_chaos(workdir):
    print("sweep-gate: chaos parity (fault-injected lease sweep vs "
          "clean serial sweep) ...")
    import json

    reference_path = os.path.join(workdir, "chaos-reference.json")
    batch_check(["--backend", "serial", "--stable-json", reference_path],
                seed=1100)
    lease_dir = os.path.join(workdir, "chaos-leases")
    chaos_path = os.path.join(workdir, "chaos-swept.json")
    batch_check(["--backend", "thread", "--jobs", "2",
                 "--leases", lease_dir,
                 "--retry", CHAOS_RETRY_SPEC,
                 "--inject-faults", CHAOS_FAULT_SPEC,
                 "--lease-duration", CHAOS_LEASE_DURATION,
                 "--cache-dir", os.path.join(workdir, "chaos-store"),
                 "--stable-json", chaos_path], seed=1101)
    if read(chaos_path) != read(reference_path):
        print("sweep-gate: FAIL: fault-injected lease sweep stable JSON "
              "differs from the clean serial sweep")
        return False
    with open(os.path.join(lease_dir, "metrics.json"),
              encoding="utf-8") as handle:
        metrics = json.load(handle)["metrics"]
    missing = [name for name in CHAOS_REQUIRED_METRICS
               if not int((metrics.get(name) or {}).get("value") or 0)]
    if missing:
        print(f"sweep-gate: FAIL: injected fault class(es) left no "
              f"metric trace: {', '.join(missing)} -- the chaos dice "
              f"never landed, so the sweep proved nothing")
        return False
    counts = {name.rsplit(".", 1)[1]: metrics[name]["value"]
              for name in CHAOS_REQUIRED_METRICS}
    print(f"sweep-gate: ok: chaos sweep byte-identical to the clean "
          f"sweep with every fault class exercised ({counts})")
    return True


def main():
    workdir = tempfile.mkdtemp(prefix="repro-sweep-gate-")
    try:
        passed = check_backend_parity(workdir)
        passed = check_shard_merge(workdir) and passed
        passed = check_bdd_cache_parity(workdir) and passed
        passed = check_trace_parity(workdir) and passed
        passed = check_delta_parity(workdir) and passed
        passed = check_chaos(workdir) and passed
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    if not passed:
        return 1
    print("sweep-gate: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
