#!/usr/bin/env python
"""Aggregate report over the per-entry trace files of a sweep.

``batch-check --trace DIR`` writes one JSON-lines trace per swept entry
(keyed by the entry's content fingerprint, see
:class:`repro.obs.sinks.JSONLSink`).  This tool reads one or more such
directories -- e.g. the pooled ``stores/shard-*/traces`` artifacts of
the CI matrix -- and renders the cross-entry view:

* the top-N slowest entries (traced wall time, with provenance);
* the per-stage breakdown (self time, which telescopes: the stage
  shares sum to the total traced wall time);
* the per-stage BDD operation-cache efficiency table.

Reading is salvage-friendly: corrupt or truncated trailing lines (a
killed sweep) are skipped with a :class:`~repro.obs.sinks.TraceReadWarning`
and counted in the report, never fatal.

Exit status: 0 on success, 1 when no trace files were found (or a
directory is missing), 2 on usage errors.  ``--json`` emits the same
aggregate as a machine-readable document (``schema`` 1).
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys
import warnings
from typing import Dict, List

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.obs.report import (  # noqa: E402
    merge_cache_tables,
    merge_stage_tables,
    trace_summary,
)
from repro.obs.sinks import TraceReadWarning, read_trace_records  # noqa: E402

#: Version of the ``--json`` document layout.
SCHEMA = 1


def collect_trace_files(directories: List[str]) -> List[str]:
    """Every ``*.jsonl`` under the given directories, sorted by name."""
    files: List[str] = []
    for directory in directories:
        if not os.path.isdir(directory):
            raise FileNotFoundError(directory)
        files.extend(glob.glob(os.path.join(directory, "*.jsonl")))
    return sorted(files, key=os.path.basename)


def load_summaries(files: List[str]) -> Dict[str, object]:
    """Per-entry summaries plus the salvage count over many trace files."""
    summaries = []
    skipped_lines = 0
    with warnings.catch_warnings():
        warnings.simplefilter("always", TraceReadWarning)
        for path in files:
            records, skipped = read_trace_records(path)
            skipped_lines += skipped
            if not records:
                continue
            summary = trace_summary(records)
            summary["file"] = os.path.basename(path)
            summaries.append(summary)
    return {"summaries": summaries, "skipped_lines": skipped_lines}


def aggregate(directories: List[str], top: int) -> Dict[str, object]:
    """The full report document over the trace directories."""
    files = collect_trace_files(directories)
    loaded = load_summaries(files)
    summaries = loaded["summaries"]
    slowest = sorted(summaries, key=lambda s: s.get("wall_s") or 0.0,
                     reverse=True)[:max(top, 0)]
    return {
        "schema": SCHEMA,
        "directories": list(directories),
        "trace_files": len(files),
        "entries": len(summaries),
        "skipped_lines": loaded["skipped_lines"],
        "wall_s": round(sum(float(s.get("wall_s") or 0.0)
                            for s in summaries), 6),
        "slowest": [
            {"entry": s.get("entry"), "fingerprint": s.get("fingerprint"),
             "wall_s": s.get("wall_s"), "provenance": s.get("provenance"),
             "file": s.get("file")}
            for s in slowest],
        "stages": merge_stage_tables(summaries),
        "cache": merge_cache_tables(summaries),
    }


def render(document: Dict[str, object]) -> str:
    """The human-readable form of one aggregate document."""
    lines = [f"trace-report: {document['entries']} entries "
             f"from {document['trace_files']} trace files "
             f"(wall={document['wall_s']:.3f}s)"]
    if document["skipped_lines"]:
        lines.append(f"  salvage: skipped {document['skipped_lines']} "
                     f"corrupt trace lines")

    slowest = document["slowest"]
    if slowest:
        lines.append(f"slowest {len(slowest)} entries:")
        width = max(len(str(s["entry"])) for s in slowest)
        for item in slowest:
            provenance = item.get("provenance") or {}
            where = (f" [{provenance.get('backend')}"
                     f"/shard {provenance.get('shard')}]"
                     if provenance else "")
            lines.append(f"  {str(item['entry']):<{width}} "
                         f"{float(item['wall_s'] or 0.0):8.3f}s{where}")

    stages = document["stages"]
    if stages:
        total_self = sum(entry["self_s"] for entry in stages.values())
        lines.append("per-stage breakdown (self time):")
        ordered = sorted(stages.items(),
                         key=lambda item: item[1]["self_s"], reverse=True)
        for label, entry in ordered:
            share = (entry["self_s"] / total_self * 100.0
                     if total_self else 0.0)
            lines.append(f"  {label:<24} self={entry['self_s']:9.3f}s "
                         f"({share:5.1f}%)  total={entry['total_s']:9.3f}s "
                         f"n={entry['count']}")

    cache = document["cache"]
    if cache:
        lines.append("BDD cache efficiency:")
        for label, entry in sorted(cache.items()):
            rate = entry["hit_rate"]
            lines.append(f"  {label:<24} lookups={entry['lookups']:<10} "
                         f"hits={entry['hits']:<10} "
                         f"evictions={entry['evictions']:<8} "
                         f"hit-rate={rate if rate is not None else '-'}")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="trace_report",
        description="Aggregate report over per-entry sweep trace files.")
    parser.add_argument("directories", nargs="+", metavar="DIR",
                        help="trace directories (pooled shard artifacts "
                             "may be passed together)")
    parser.add_argument("--top", type=int, default=10, metavar="N",
                        help="number of slowest entries to list "
                             "(default: 10)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit the aggregate as JSON instead of text")
    try:
        arguments = parser.parse_args(argv)
    except SystemExit as error:
        # argparse exits 2 on usage errors already; normalise the success
        # path of --help back through.
        return int(error.code or 0)

    try:
        document = aggregate(arguments.directories, arguments.top)
    except FileNotFoundError as error:
        print(f"trace-report: no such trace directory: {error.args[0]}",
              file=sys.stderr)
        return 1
    if document["trace_files"] == 0:
        print("trace-report: no trace files found", file=sys.stderr)
        return 1

    if arguments.as_json:
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        print(render(document))
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Piped into `head`: the consumer closing early is not an error.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(0)
