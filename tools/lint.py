#!/usr/bin/env python
"""Project linter: ``ruff check`` when available, the ``tools.analysis``
lint pass otherwise.

This is a thin shim kept so ``make lint`` (and muscle memory) work
unchanged.  The four built-in rules that used to live here -- syntax,
unused-import, undefined-export, duplicate-definition -- moved into the
repo's static analyzer as rules RA401-RA404 (see ``python -m
tools.analysis --list-rules``); on dependency-free machines this shim
runs exactly that pass.  The full analyzer (determinism, schema
round-trips, facade purity, registry hygiene) runs as ``make analyze``.

Exit status: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import os
import shutil
import subprocess
import sys
from typing import List

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def main(argv: List[str]) -> int:
    paths = argv or ["src", "tests", "tools"]
    missing = [path for path in paths if not os.path.exists(path)]
    if missing:
        print(f"lint: no such path(s): {', '.join(missing)}",
              file=sys.stderr)
        return 2
    ruff = shutil.which("ruff")
    if ruff:
        return subprocess.call([ruff, "check", *paths])
    if REPO_ROOT not in sys.path:  # run as a script, tools/ is sys.path[0]
        sys.path.insert(0, REPO_ROOT)
    from tools.analysis import Config, analyze_paths

    result = analyze_paths(paths, config=Config(select=("RA4",)))
    for finding in result.findings:
        print(finding.render())
    print(f"lint (tools.analysis): {result.files_checked} files "
          f"checked, {len(result.findings)} finding(s)")
    return 1 if result.findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
