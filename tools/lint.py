#!/usr/bin/env python
"""Project linter: ``ruff check`` when available, a built-in subset otherwise.

``make lint`` runs this over ``src``, ``tests`` and ``tools``.  On
machines with ruff installed it defers to ``ruff check`` (configured in
``pyproject.toml``); on dependency-free machines (this repository runs
without third-party packages) it falls back to a small AST-based linter
covering the highest-signal rules:

* **syntax** -- the file must parse (ruff E999),
* **unused-import** -- a module-level import never referenced in the
  module and not re-exported via ``__all__`` (ruff F401; ``__init__``
  modules are exempt: re-exporting is their job),
* **undefined-export** -- an ``__all__`` entry that names nothing
  defined or imported at module level (ruff F822),
* **duplicate-definition** -- a module-level function/class defined twice
  (shadowing the first definition silently; ruff F811).

Exit status: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import ast
import os
import shutil
import subprocess
import sys
from typing import Iterator, List, Set


def iter_python_files(paths: List[str]) -> Iterator[str]:
    for path in paths:
        if os.path.isfile(path) and path.endswith(".py"):
            yield path
            continue
        for root, _dirs, files in os.walk(path):
            for name in sorted(files):
                if name.endswith(".py"):
                    yield os.path.join(root, name)


# ----------------------------------------------------------------------
# The fallback rules
# ----------------------------------------------------------------------
def collect_used_names(tree: ast.AST) -> Set[str]:
    """Every identifier the module references (including attribute roots
    and names quoted in ``__all__``-style string constants)."""
    used: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            used.add(node.id)
        elif isinstance(node, ast.Attribute):
            root = node
            while isinstance(root, ast.Attribute):
                root = root.value
            if isinstance(root, ast.Name):
                used.add(root.id)
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            used.add(node.value)  # __all__ entries, typing forward refs
    return used


def module_imports(tree: ast.Module):
    """Module-level ``(bound_name, lineno)`` pairs from import statements."""
    for node in tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield alias.asname or alias.name.partition(".")[0], node.lineno
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue  # compiler directives, not bindings to use
            for alias in node.names:
                if alias.name == "*":
                    continue
                yield alias.asname or alias.name, node.lineno


def module_definitions(tree: ast.Module) -> Set[str]:
    """Names bound at module level (defs, classes, assignments, imports)."""
    defined: Set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            defined.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                for child in ast.walk(target):
                    if isinstance(child, ast.Name):
                        defined.add(child.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target,
                                                            ast.Name):
            defined.add(node.target.id)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            defined.update(name for name, _ in module_imports(
                ast.Module(body=[node], type_ignores=[])))
    return defined


def dunder_all(tree: ast.Module) -> List[str]:
    for node in tree.body:
        if isinstance(node, ast.Assign):
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
            if "__all__" in targets:
                try:
                    value = ast.literal_eval(node.value)
                except ValueError:
                    return []
                return [entry for entry in value if isinstance(entry, str)]
    return []


def lint_file(path: str) -> List[str]:
    with open(path, encoding="utf-8") as handle:
        source = handle.read()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return [f"{path}:{error.lineno}: syntax error: {error.msg}"]

    findings: List[str] = []
    used = collect_used_names(tree)
    exported = set(dunder_all(tree))
    is_init = os.path.basename(path) == "__init__.py"

    if not is_init:  # re-exporting is an __init__ module's job
        for name, lineno in module_imports(tree):
            if name.startswith("_"):
                continue
            if name not in used and name not in exported:
                findings.append(
                    f"{path}:{lineno}: unused-import: {name!r} is "
                    f"imported but never used")

    defined = module_definitions(tree)
    for entry in dunder_all(tree):
        if entry not in defined:
            findings.append(
                f"{path}:1: undefined-export: __all__ names {entry!r} "
                f"which is not defined in the module")

    seen: dict = {}
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            if node.name in seen:
                findings.append(
                    f"{path}:{node.lineno}: duplicate-definition: "
                    f"{node.name!r} already defined on line "
                    f"{seen[node.name]}")
            seen[node.name] = node.lineno
    return findings


def run_fallback(paths: List[str]) -> int:
    findings: List[str] = []
    count = 0
    for path in iter_python_files(paths):
        count += 1
        findings.extend(lint_file(path))
    for finding in findings:
        print(finding)
    print(f"lint (builtin): {count} files checked, "
          f"{len(findings)} finding(s)")
    return 1 if findings else 0


def main(argv: List[str]) -> int:
    paths = argv or ["src", "tests", "tools"]
    missing = [path for path in paths if not os.path.exists(path)]
    if missing:
        print(f"lint: no such path(s): {', '.join(missing)}",
              file=sys.stderr)
        return 2
    ruff = shutil.which("ruff")
    if ruff:
        return subprocess.call([ruff, "check", *paths])
    return run_fallback(paths)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
