#!/usr/bin/env python
"""End-to-end smoke test of the ``repro.serve`` daemon as a subprocess.

The CI serve job and ``make serve-smoke`` run this script.  It boots a
real ``python -m repro serve`` process and walks the whole lifecycle:

1. ``/healthz`` answers ``ok``;
2. a cold streamed check emits the full event ladder
   (``queued`` -> ``running`` -> stage events -> ``result``);
3. the warm repeat of the same request is served from the run store
   (``cached`` true, byte-identical stable verdict);
4. a raw ``.g``-text request round-trips;
5. ``/metrics`` exposes the documented counters and proves the warm
   repeat hit the cache (``serve.runstore.hits >= 1``);
6. ``POST /shutdown`` drains the daemon, which exits 0 and reports
   "drained and stopped".

Exit status: 0 when every step holds, 1 (via SystemExit) otherwise.
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.serve import ServeClient  # noqa: E402

_LISTENING = re.compile(r"listening on http://([0-9.]+):(\d+)")

RAW_G_TEXT = """.model smoke_toggle
.inputs a
.outputs b
.graph
a+ b+
b+ a-
a- b-
b- a+
.marking { <b-,a+> }
.initial_values a=0 b=0
.end
"""

#: Counters/gauges the smoke test requires in a /metrics scrape.
REQUIRED_METRICS = (
    "serve.requests", "serve.rejected",
    "serve.runstore.hits", "serve.runstore.misses",
    "serve.bdd.hits", "serve.bdd.misses",
    "serve.queue.depth", "serve.uptime.seconds",
    "serve.request.seconds", "serve.entry.seconds",
)


def fail(message):
    raise SystemExit(f"serve-smoke: FAIL: {message}")


def main():
    state_dir = tempfile.mkdtemp(prefix="repro-serve-smoke-")
    environment = dict(os.environ)
    environment["PYTHONPATH"] = (
        os.path.join(REPO_ROOT, "src")
        + (os.pathsep + environment["PYTHONPATH"]
           if environment.get("PYTHONPATH") else ""))
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--jobs", "2", "--state-dir", state_dir],
        env=environment, cwd=REPO_ROOT, stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT, text=True)
    line = process.stdout.readline()
    match = _LISTENING.search(line)
    if not match:
        process.kill()
        fail(f"daemon did not start: {line!r}")
    host, port = match.group(1), int(match.group(2))
    client = ServeClient(host=host, port=port)
    print(f"serve-smoke: daemon up on {host}:{port}")

    health = client.health()
    if health.get("status") != "ok":
        fail(f"/healthz reported {health}")
    print("serve-smoke: /healthz ok")

    events = list(client.check_stream(entry="handshake"))
    kinds = [event["type"] for event in events]
    if kinds[:2] != ["queued", "running"] or kinds[-1] != "result":
        fail(f"cold stream event ladder wrong: {kinds}")
    if "stage" not in kinds:
        fail(f"cold stream carried no stage events: {kinds}")
    cold = events[-1]
    if cold["status"] != "ok" or cold["cached"]:
        fail(f"cold handshake check not ok/uncached: {cold['status']}, "
             f"cached={cold['cached']}")
    print(f"serve-smoke: cold check ok "
          f"({len(events)} events, {kinds.count('stage')} stages)")

    warm = client.check(entry="handshake")
    if not warm["cached"]:
        fail("warm repeat was not served from the run store")
    if json.dumps(warm["stable"], sort_keys=True) != \
            json.dumps(cold["stable"], sort_keys=True):
        fail("warm stable verdict differs from cold")
    print("serve-smoke: warm repeat cached, stable verdict identical")

    raw = client.check(g_text=RAW_G_TEXT, name="smoke_toggle")
    if raw["status"] != "ok":
        fail(f"raw g_text check failed: {raw}")
    print("serve-smoke: raw .g text check ok")

    metrics = client.metrics()["metrics"]
    missing = [name for name in REQUIRED_METRICS if name not in metrics]
    if missing:
        fail(f"/metrics is missing {missing}")
    hits = metrics["serve.runstore.hits"]["value"]
    if hits < 1:
        fail(f"serve.runstore.hits is {hits}; warm repeat not proven")
    print(f"serve-smoke: /metrics ok ({len(metrics)} series, "
          f"runstore hits {hits})")

    client.shutdown()
    try:
        process.wait(timeout=30)
    except subprocess.TimeoutExpired:
        process.kill()
        fail("daemon did not exit after /shutdown")
    tail = process.stdout.read()
    if process.returncode != 0:
        fail(f"daemon exited {process.returncode}: {tail}")
    if "drained and stopped" not in tail:
        fail(f"daemon shutdown message missing: {tail!r}")
    print("serve-smoke: daemon drained and exited 0")
    print("serve-smoke: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
