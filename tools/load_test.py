#!/usr/bin/env python
"""Load harness of the ``repro.serve`` daemon: cold vs warm latency.

Boots a real daemon subprocess (``python -m repro serve``), drives it
with N concurrent clients (default 8) issuing corpus-entry check
requests, and reports per-request latency percentiles for two rounds:

* **cold** -- a fresh daemon state directory: every distinct task is
  actually verified (concurrent duplicates still coalesce through the
  single-flight lock, exactly as in production);
* **warm** -- the identical request mix again: every request is served
  from the daemon's RunStore without running anything.

The ``--output`` JSON (committed as ``BENCH_serve.json`` by ``make
bench``) records p50/p99 per round plus the daemon's own counters, so
the warm numbers are *provably* cache-served (hits == warm requests).

Usage::

    python tools/load_test.py                       # 8 clients, print
    python tools/load_test.py --clients 16 --requests-per-client 4
    python tools/load_test.py --output BENCH_serve.json
"""

from __future__ import annotations

import argparse
import json
import os
import re
import subprocess
import sys
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.serve import ServeClient  # noqa: E402

#: Corpus entries the clients cycle through -- a representative mix of
#: cheap and mid-size tasks, all with clean expected verdicts.
ENTRIES = ("handshake", "vme_read", "mutex_element", "sbuf_send_ctl",
           "master_read_2", "muller_pipeline_4", "random_ring_n4_s1",
           "random_ring_n6_s3")

_LISTENING = re.compile(r"listening on http://([0-9.]+):(\d+)")


def boot_daemon(jobs, state_dir):
    """Start ``python -m repro serve`` and wait for its listening line."""
    environment = dict(os.environ)
    environment["PYTHONPATH"] = (
        os.path.join(REPO_ROOT, "src")
        + (os.pathsep + environment["PYTHONPATH"]
           if environment.get("PYTHONPATH") else ""))
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--jobs", str(jobs), "--state-dir", state_dir],
        env=environment, cwd=REPO_ROOT, stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT, text=True)
    line = process.stdout.readline()
    match = _LISTENING.search(line)
    if not match:
        process.kill()
        raise SystemExit(f"load_test: daemon failed to start: {line!r}")
    return process, match.group(1), int(match.group(2))


def percentile(sorted_values, fraction):
    """Nearest-rank percentile of an already-sorted latency list."""
    if not sorted_values:
        return None
    rank = max(0, min(len(sorted_values) - 1,
                      round(fraction * (len(sorted_values) - 1))))
    return sorted_values[rank]


def run_round(host, port, clients, requests_per_client):
    """One round of concurrent requests; returns sorted latencies."""

    def client_run(client_index):
        client = ServeClient(host=host, port=port)
        latencies = []
        for request_index in range(requests_per_client):
            entry = ENTRIES[(client_index + request_index) % len(ENTRIES)]
            start = time.perf_counter()
            result = client.check(entry=entry)
            latencies.append(time.perf_counter() - start)
            if result["status"] not in ("ok", "mismatch"):
                raise SystemExit(
                    f"load_test: entry {entry!r} failed: {result}")
        return latencies

    with ThreadPoolExecutor(max_workers=clients) as pool:
        per_client = list(pool.map(client_run, range(clients)))
    return sorted(latency for chunk in per_client for latency in chunk)


def summarise(latencies):
    return {
        "requests": len(latencies),
        "p50_ms": round(percentile(latencies, 0.50) * 1000, 3),
        "p99_ms": round(percentile(latencies, 0.99) * 1000, 3),
        "max_ms": round(latencies[-1] * 1000, 3),
        "total_s": round(sum(latencies), 3),
    }


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Concurrent-client load test of the serve daemon.")
    parser.add_argument("--clients", type=int, default=8,
                        help="concurrent clients (default: 8)")
    parser.add_argument("--requests-per-client", type=int, default=3,
                        help="requests each client issues per round")
    parser.add_argument("--jobs", type=int, default=4,
                        help="daemon worker count")
    parser.add_argument("--output", default=None,
                        help="write the JSON summary to this path")
    arguments = parser.parse_args(argv)
    if arguments.clients < 1 or arguments.requests_per_client < 1:
        parser.error("--clients and --requests-per-client must be >= 1")

    with tempfile.TemporaryDirectory(prefix="repro-load-") as state_dir:
        process, host, port = boot_daemon(arguments.jobs, state_dir)
        try:
            client = ServeClient(host=host, port=port)
            print(f"load_test: daemon up on {host}:{port}; "
                  f"{arguments.clients} clients x "
                  f"{arguments.requests_per_client} requests, "
                  f"{len(ENTRIES)} distinct entries")
            rounds = {}
            for label in ("cold", "warm"):
                latencies = run_round(host, port, arguments.clients,
                                      arguments.requests_per_client)
                rounds[label] = summarise(latencies)
                print(f"load_test: {label:4s} p50 "
                      f"{rounds[label]['p50_ms']:9.3f} ms   p99 "
                      f"{rounds[label]['p99_ms']:9.3f} ms   "
                      f"({rounds[label]['requests']} requests)")
            metrics = client.metrics()["metrics"]
            counters = {name: metrics[name]["value"]
                        for name in ("serve.requests",
                                     "serve.runstore.hits",
                                     "serve.runstore.misses",
                                     "serve.bdd.hits",
                                     "serve.bdd.misses")}
            client.shutdown()
        finally:
            try:
                process.wait(timeout=30)
            except subprocess.TimeoutExpired:
                process.kill()
                raise SystemExit("load_test: daemon did not drain")

    total = arguments.clients * arguments.requests_per_client
    if counters["serve.runstore.hits"] < total:
        raise SystemExit(
            f"load_test: warm round was not cache-served "
            f"(hits {counters['serve.runstore.hits']} < {total})")
    summary = {
        "clients": arguments.clients,
        "requests_per_client": arguments.requests_per_client,
        "jobs": arguments.jobs,
        "entries": list(ENTRIES),
        "rounds": rounds,
        "daemon_counters": counters,
        "speedup_p50": (round(rounds["cold"]["p50_ms"]
                              / rounds["warm"]["p50_ms"], 1)
                        if rounds["warm"]["p50_ms"] else None),
    }
    if arguments.output:
        with open(arguments.output, "w", encoding="utf-8") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"load_test: wrote {arguments.output}")
    print(f"load_test: PASS (warm round fully cache-served, "
          f"p50 speedup {summary['speedup_p50']}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
