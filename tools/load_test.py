#!/usr/bin/env python
"""Load harness of the ``repro.serve`` daemon: cold vs warm latency.

Boots a real daemon subprocess (``python -m repro serve``), drives it
with N concurrent clients (default 8) issuing corpus-entry check
requests, and reports per-request latency percentiles for two rounds:

* **cold** -- a fresh daemon state directory: every distinct task is
  actually verified (concurrent duplicates still coalesce through the
  single-flight lock, exactly as in production);
* **warm** -- the identical request mix again: every request is served
  from the daemon's RunStore without running anything.

A third **edit-loop** scenario measures the incremental-verification
path end to end: one large base specification is checked once, then a
sequence of distinct one-signal edits is re-checked twice each way --
cold (no ``base``) and delta (``base="editloop-base"``, the schema-2
warm start seeding the traversal from the cached base entry).  Every
delta re-check must actually report the ``seed`` reuse tier; the
cold-vs-delta p50 ratio is the committed speedup number.

The ``--output`` JSON (committed as ``BENCH_serve.json`` by ``make
bench``) records p50/p99 per round plus the daemon's own counters, so
the warm numbers are *provably* cache-served (hits == warm requests)
and the delta numbers provably seeded (``serve.bdd.delta_seeds``).

Usage::

    python tools/load_test.py                       # 8 clients, print
    python tools/load_test.py --clients 16 --requests-per-client 4
    python tools/load_test.py --output BENCH_serve.json
"""

from __future__ import annotations

import argparse
import json
import os
import re
import subprocess
import sys
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.serve import ServeClient  # noqa: E402

#: Corpus entries the clients cycle through -- a representative mix of
#: cheap and mid-size tasks, all with clean expected verdicts.
ENTRIES = ("handshake", "vme_read", "mutex_element", "sbuf_send_ctl",
           "master_read_2", "muller_pipeline_4", "random_ring_n4_s1",
           "random_ring_n6_s3")

#: Scale of the edit-loop base specification -- large enough that a
#: cold re-check costs real traversal time, so the seeded speedup is
#: measurable rather than noise.
EDIT_LOOP_SCALE = 18
#: Distinct one-signal edits re-checked against the base (each variant
#: differs in content: identical texts would be served by the exact
#: warm stores and measure nothing).
EDIT_LOOP_EDITS = 6

_LISTENING = re.compile(r"listening on http://([0-9.]+):(\d+)")


def boot_daemon(jobs, state_dir):
    """Start ``python -m repro serve`` and wait for its listening line."""
    environment = dict(os.environ)
    environment["PYTHONPATH"] = (
        os.path.join(REPO_ROOT, "src")
        + (os.pathsep + environment["PYTHONPATH"]
           if environment.get("PYTHONPATH") else ""))
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--jobs", str(jobs), "--state-dir", state_dir],
        env=environment, cwd=REPO_ROOT, stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT, text=True)
    line = process.stdout.readline()
    match = _LISTENING.search(line)
    if not match:
        process.kill()
        raise SystemExit(f"load_test: daemon failed to start: {line!r}")
    return process, match.group(1), int(match.group(2))


def percentile(sorted_values, fraction):
    """Nearest-rank percentile of an already-sorted latency list."""
    if not sorted_values:
        return None
    rank = max(0, min(len(sorted_values) - 1,
                      round(fraction * (len(sorted_values) - 1))))
    return sorted_values[rank]


def run_round(host, port, clients, requests_per_client):
    """One round of concurrent requests; returns sorted latencies."""

    def client_run(client_index):
        client = ServeClient(host=host, port=port)
        latencies = []
        for request_index in range(requests_per_client):
            entry = ENTRIES[(client_index + request_index) % len(ENTRIES)]
            start = time.perf_counter()
            result = client.check(entry=entry)
            latencies.append(time.perf_counter() - start)
            if result["status"] not in ("ok", "mismatch"):
                raise SystemExit(
                    f"load_test: entry {entry!r} failed: {result}")
        return latencies

    with ThreadPoolExecutor(max_workers=clients) as pool:
        per_client = list(pool.map(client_run, range(clients)))
    return sorted(latency for chunk in per_client for latency in chunk)


def edit_loop_specs():
    """The base text and the cold/delta one-signal edit variants.

    Every variant keeps the base's ``.model`` name (a re-checked saved
    file) and adds a disconnected two-phase cycle of a fresh internal
    signal -- the seed-tier shape, where the daemon extends the base's
    reachable set instead of traversing from the initial state.
    """
    from repro.stg.generators import build_example
    from repro.stg.parser import parse_g
    from repro.stg.stg import SignalKind
    from repro.stg.writer import to_g_string

    base = to_g_string(build_example("muller_pipeline", EDIT_LOOP_SCALE))

    def variant(signal):
        stg = parse_g(base)
        rising, falling = f"{signal}+", f"{signal}-"
        p0, p1 = f"p_{signal}0", f"p_{signal}1"
        stg.add_signal(signal, SignalKind.INTERNAL, initial_value=False)
        stg.add_place(p0, tokens=1)
        stg.add_place(p1)
        stg.add_transition(rising)
        stg.add_transition(falling)
        for arc in ((p0, rising), (rising, p1),
                    (p1, falling), (falling, p0)):
            stg.add_arc(*arc)
        return to_g_string(stg)

    colds = [variant(f"cold{index}") for index in range(EDIT_LOOP_EDITS)]
    deltas = [variant(f"edit{index}") for index in range(EDIT_LOOP_EDITS)]
    return base, colds, deltas


def run_edit_loop(host, port):
    """The sequential editor loop: base check, then cold vs delta edits.

    Returns ``(cold_latencies, delta_latencies)``, both sorted; exits
    if any delta re-check fails to engage the seed tier (a delta number
    that silently measured a cold traversal would be meaningless).
    """
    client = ServeClient(host=host, port=port)
    base, colds, deltas = edit_loop_specs()
    client.check(g_text=base, name="editloop-base", checks=["csc"])
    cold_latencies = []
    for index, text in enumerate(colds):
        start = time.perf_counter()
        result = client.check(g_text=text, name=f"editloop-cold{index}",
                              checks=["csc"])
        cold_latencies.append(time.perf_counter() - start)
        if result["status"] != "ok":
            raise SystemExit(f"load_test: cold edit {index} failed: "
                             f"{result['status']}")
    delta_latencies = []
    for index, text in enumerate(deltas):
        start = time.perf_counter()
        result = client.check(g_text=text, name=f"editloop-edit{index}",
                              checks=["csc"], base="editloop-base")
        delta_latencies.append(time.perf_counter() - start)
        delta = result["entry"]["report"]["delta"]
        if result["status"] != "ok" or not delta or \
                delta["tier"] != "seed":
            raise SystemExit(
                f"load_test: delta edit {index} did not seed: "
                f"status {result['status']}, delta {delta}")
    return sorted(cold_latencies), sorted(delta_latencies)


def summarise(latencies):
    return {
        "requests": len(latencies),
        "p50_ms": round(percentile(latencies, 0.50) * 1000, 3),
        "p99_ms": round(percentile(latencies, 0.99) * 1000, 3),
        "max_ms": round(latencies[-1] * 1000, 3),
        "total_s": round(sum(latencies), 3),
    }


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Concurrent-client load test of the serve daemon.")
    parser.add_argument("--clients", type=int, default=8,
                        help="concurrent clients (default: 8)")
    parser.add_argument("--requests-per-client", type=int, default=3,
                        help="requests each client issues per round")
    parser.add_argument("--jobs", type=int, default=4,
                        help="daemon worker count")
    parser.add_argument("--output", default=None,
                        help="write the JSON summary to this path")
    arguments = parser.parse_args(argv)
    if arguments.clients < 1 or arguments.requests_per_client < 1:
        parser.error("--clients and --requests-per-client must be >= 1")

    with tempfile.TemporaryDirectory(prefix="repro-load-") as state_dir:
        process, host, port = boot_daemon(arguments.jobs, state_dir)
        try:
            client = ServeClient(host=host, port=port)
            print(f"load_test: daemon up on {host}:{port}; "
                  f"{arguments.clients} clients x "
                  f"{arguments.requests_per_client} requests, "
                  f"{len(ENTRIES)} distinct entries")
            rounds = {}
            for label in ("cold", "warm"):
                latencies = run_round(host, port, arguments.clients,
                                      arguments.requests_per_client)
                rounds[label] = summarise(latencies)
                print(f"load_test: {label:4s} p50 "
                      f"{rounds[label]['p50_ms']:9.3f} ms   p99 "
                      f"{rounds[label]['p99_ms']:9.3f} ms   "
                      f"({rounds[label]['requests']} requests)")
            print(f"load_test: edit loop (muller_pipeline@"
                  f"{EDIT_LOOP_SCALE}, {EDIT_LOOP_EDITS} one-signal "
                  f"edits, cold vs --base) ...")
            cold_edits, delta_edits = run_edit_loop(host, port)
            edit_loop = {
                "scale": EDIT_LOOP_SCALE,
                "edits": EDIT_LOOP_EDITS,
                "cold": summarise(cold_edits),
                "delta": summarise(delta_edits),
                "speedup_p50": round(
                    percentile(cold_edits, 0.50)
                    / percentile(delta_edits, 0.50), 1),
            }
            for label in ("cold", "delta"):
                print(f"load_test: edit {label:5s} p50 "
                      f"{edit_loop[label]['p50_ms']:9.3f} ms   p99 "
                      f"{edit_loop[label]['p99_ms']:9.3f} ms")
            print(f"load_test: edit-loop p50 speedup "
                  f"{edit_loop['speedup_p50']}x (delta vs cold)")
            metrics = client.metrics()["metrics"]
            counters = {name: metrics[name]["value"]
                        for name in ("serve.requests",
                                     "serve.runstore.hits",
                                     "serve.runstore.misses",
                                     "serve.bdd.hits",
                                     "serve.bdd.misses",
                                     "serve.delta.requests",
                                     "serve.bdd.delta_seeds",
                                     "serve.bdd.delta_colds")}
            client.shutdown()
        finally:
            try:
                process.wait(timeout=30)
            except subprocess.TimeoutExpired:
                process.kill()
                raise SystemExit("load_test: daemon did not drain")

    total = arguments.clients * arguments.requests_per_client
    if counters["serve.runstore.hits"] < total:
        raise SystemExit(
            f"load_test: warm round was not cache-served "
            f"(hits {counters['serve.runstore.hits']} < {total})")
    if counters["serve.bdd.delta_seeds"] < EDIT_LOOP_EDITS:
        raise SystemExit(
            f"load_test: edit-loop deltas were not seeded "
            f"(delta_seeds {counters['serve.bdd.delta_seeds']} "
            f"< {EDIT_LOOP_EDITS})")
    summary = {
        "clients": arguments.clients,
        "requests_per_client": arguments.requests_per_client,
        "jobs": arguments.jobs,
        "entries": list(ENTRIES),
        "rounds": rounds,
        "edit_loop": edit_loop,
        "daemon_counters": counters,
        "speedup_p50": (round(rounds["cold"]["p50_ms"]
                              / rounds["warm"]["p50_ms"], 1)
                        if rounds["warm"]["p50_ms"] else None),
    }
    if arguments.output:
        with open(arguments.output, "w", encoding="utf-8") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"load_test: wrote {arguments.output}")
    print(f"load_test: PASS (warm round fully cache-served, "
          f"p50 speedup {summary['speedup_p50']}x; edit-loop deltas "
          f"seeded, p50 speedup {edit_loop['speedup_p50']}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
