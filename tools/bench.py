#!/usr/bin/env python
"""The tracked benchmark harness: kernel rows + BDD-cache sweep timing.

Runs the Table-1 benchmark rows (corpus entries and scalable-family
instances) through the symbolic :class:`~repro.core.pipeline.
VerificationPipeline` and times a real ``batch-check`` sweep twice --
once against a cold ``--bdd-cache`` store and once against the warm one
-- then emits everything as ``BENCH_sweep.json`` so the performance
trajectory of the symbolic hot path is tracked in-repo::

    python tools/bench.py --quick                  # the CI subset
    python tools/bench.py                          # the full row set
    python tools/bench.py --kernel-only            # skip the sweep section
    python tools/bench.py --before old.json        # embed a baseline run

Per kernel row the harness records wall time (total and traversal-only),
traversal iterations and image counts, the Reached-BDD peak/final sizes,
the peak number of live manager nodes and the manager's operation-cache
hit rate.  Stat collection runs through :mod:`repro.obs` (an in-memory
tracer around every row), so the hit rate comes from the traversal
span's BDD delta -- the same numbers ``--trace`` files carry -- with
the :class:`~repro.core.stats.TraversalStats` counters as fallback on
old checkouts.  The ``tracing`` section commits the observability
layer's own cost (no-op span nanoseconds, disabled-path and
enabled-path overhead: disabled must stay under 2%).  The
``bdd_cache`` section is the headline number of the persistent
reachable-set cache: the warm sweep serves every reachable BDD from
the store and must beat the cold sweep by a wide margin.

The output schema is plain JSON (``schema`` marks revisions); a run
captured on an older kernel can be embedded under ``"before"`` with
``--before`` so one committed file shows the trajectory.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import shutil
import subprocess
import sys
import tempfile
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

SCHEMA = 1

#: Kernel rows: corpus entry names and ``family@scale`` instances.  The
#: quick set is the CI subset; the full set adds the scales where the
#: traversal genuinely dominates (seconds, not milliseconds).
QUICK_ROWS = (
    "vme_read",
    "master_read_2",
    "muller_pipeline_4",
    "mutex3",
    "muller_pipeline@16",
    "master_read@8",
    "parallel_handshakes@10",
)
FULL_ROWS = QUICK_ROWS + (
    "muller_pipeline@24",
    "muller_pipeline@32",
    "master_read@12",
    "parallel_handshakes@16",
    "random_parallel@8",
)

#: The sweep timed cold-vs-warm against a ``--bdd-cache`` store.  No
#: ``--cache-dir`` result store is involved, so the warm run's only
#: advantage is the persisted reachable BDDs.  Naming one cheap corpus
#: entry keeps batch-check from defaulting to the whole corpus, so the
#: measurement is the family scale sweep it claims to be; the default
#: check set (everything but the liveness extras, whose backward
#: closure dwarfs the forward traversal at large scales) keeps the
#: comparison about the traversal.
_DEFAULT_CHECKS = ("--checks", "consistency,safeness,persistency,"
                               "fake_conflicts,csc,reducibility")
QUICK_SWEEP = ("handshake", "--family", "muller_pipeline:12-18",
               *_DEFAULT_CHECKS)
FULL_SWEEP = ("handshake", "--family", "muller_pipeline:16-24",
              *_DEFAULT_CHECKS)


def build_row_stg(row: str):
    """A row is a corpus entry name or a ``family@scale`` instance."""
    from repro.stg.generators import build_example
    from repro.stg.parser import parse_g

    if "@" in row:
        family, _, scale = row.partition("@")
        return build_example(family, int(scale))
    from repro import corpus

    return parse_g(corpus.entry(row).g_text, name=row)


def _traced_pipeline_run(stg, sink):
    """One full pipeline run under ``repro.obs`` tracing; returns
    ``(wall_s, traversal_s, pipeline)``.  ``sink=None`` runs with
    tracing disabled (the no-op path)."""
    from repro import obs
    from repro.core.pipeline import VerificationPipeline

    start = time.perf_counter()
    with obs.tracing(name=stg.name, sink=sink):
        pipeline = VerificationPipeline(stg)
        traversal_start = time.perf_counter()
        pipeline.reached  # noqa: B018 - trigger the traversal on its own
        traversal_s = time.perf_counter() - traversal_start
        pipeline.run()
    return time.perf_counter() - start, traversal_s, pipeline


def _traversal_cache_rate(records) -> "float | None":
    """Hit rate from the traversal span's BDD operation-cache delta."""
    from repro.obs.report import cache_breakdown

    entry = cache_breakdown(records).get("traversal")
    return entry["hit_rate"] if entry else None


def bench_kernel_row(row: str, repeats: int = 2) -> dict:
    """Best-of-``repeats`` timing of one pipeline run (noise damping).

    Every repeat runs under a :class:`repro.obs.InMemorySink` tracer;
    the cache hit rate comes from the traversal span's BDD delta (the
    same numbers ``--trace`` files carry), with the stats counters as
    fallback for kernels whose manager predates the obs layer -- so the
    rate is only ever ``None`` when neither source exists.
    """
    from repro import obs

    stg = build_row_stg(row)
    wall_s = traversal_s = float("inf")
    pipeline, best_records = None, []
    for _ in range(max(repeats, 1)):
        sink = obs.InMemorySink()
        elapsed, repeat_traversal_s, pipeline = _traced_pipeline_run(
            stg, sink)
        traversal_s = min(traversal_s, repeat_traversal_s)
        if elapsed < wall_s:
            wall_s, best_records = elapsed, sink.records

    stats = pipeline.traversal_stats.to_dict()
    rate = _traversal_cache_rate(best_records)
    if rate is None:
        hits = stats.get("cache_hits", 0)
        lookups = stats.get("cache_lookups", 0)
        rate = round(hits / lookups, 4) if lookups else None
    return {
        "name": row,
        "wall_s": round(wall_s, 4),
        "traversal_s": round(traversal_s, 4),
        "iterations": stats.get("iterations"),
        "images": stats.get("images_computed"),
        "bdd_peak": stats.get("peak_nodes"),
        "bdd_final": stats.get("final_nodes"),
        "states": stats.get("num_states"),
        "peak_live_nodes": stats.get("peak_live_nodes", 0),
        "cache_hit_rate": rate,
    }


def bench_tracing_overhead(row: str = "muller_pipeline_4",
                           repeats: int = 3,
                           noop_loops: int = 200_000) -> dict:
    """The cost of the observability layer itself, committed in-repo.

    Three numbers:

    * ``noop_span_ns`` -- per-call cost of ``obs.span(...)`` with no
      tracer active (one ContextVar read + a None test);
    * ``disabled_overhead_pct`` -- that no-op cost times the number of
      emission sites one pipeline run actually hits, as a fraction of
      the untraced wall time: the overhead the instrumentation adds
      when tracing is *off* (the <2 percent contract);
    * ``enabled_overhead_pct`` -- full-tracing (in-memory sink) wall
      time against the disabled path, best-of-``repeats`` each.
    """
    from repro import obs

    stg = build_row_stg(row)
    disabled_s = min(_traced_pipeline_run(stg, None)[0]
                     for _ in range(max(repeats, 1)))
    enabled_s = float("inf")
    emissions = 0
    for _ in range(max(repeats, 1)):
        sink = obs.InMemorySink()
        elapsed = _traced_pipeline_run(stg, sink)[0]
        if elapsed < enabled_s:
            enabled_s, emissions = elapsed, len(sink.records)

    start = time.perf_counter()
    for _ in range(noop_loops):
        with obs.span("bench-noop"):
            pass
    noop_span_ns = (time.perf_counter() - start) / noop_loops * 1e9

    disabled_overhead_s = emissions * noop_span_ns * 1e-9
    return {
        "row": row,
        "noop_span_ns": round(noop_span_ns, 1),
        "emission_sites": emissions,
        "disabled_s": round(disabled_s, 4),
        "enabled_s": round(enabled_s, 4),
        "disabled_overhead_pct": round(
            disabled_overhead_s / disabled_s * 100.0, 4)
        if disabled_s else None,
        "enabled_overhead_pct": round(
            (enabled_s - disabled_s) / disabled_s * 100.0, 2)
        if disabled_s else None,
    }


def batch_check_seconds(arguments, workdir) -> float:
    """Wall time of one ``python -m repro batch-check ...`` subprocess."""
    environment = dict(os.environ)
    environment["PYTHONPATH"] = (
        os.path.join(REPO_ROOT, "src")
        + (os.pathsep + environment["PYTHONPATH"]
           if environment.get("PYTHONPATH") else ""))
    command = [sys.executable, "-m", "repro", "batch-check", *arguments]
    start = time.perf_counter()
    completed = subprocess.run(
        command, env=environment, cwd=workdir,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    elapsed = time.perf_counter() - start
    if completed.returncode != 0:
        print(completed.stdout)
        raise SystemExit(f"bench: {' '.join(command)} exited "
                         f"{completed.returncode}")
    return elapsed


def bench_bdd_cache(sweep_arguments) -> dict:
    """Time the same sweep against a cold and then a warm BDD store."""
    workdir = tempfile.mkdtemp(prefix="repro-bench-")
    try:
        store = os.path.join(workdir, "bdd-store")
        arguments = [*sweep_arguments, "--bdd-cache", store]
        cold_s = batch_check_seconds(arguments, workdir)
        warm_s = batch_check_seconds(arguments, workdir)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return {
        "sweep": " ".join(sweep_arguments),
        "cold_s": round(cold_s, 3),
        "warm_s": round(warm_s, 3),
        "speedup": round(cold_s / warm_s, 2) if warm_s else None,
    }


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark the symbolic hot path and emit "
                    "BENCH_sweep.json")
    parser.add_argument("--quick", action="store_true",
                        help="the fast CI subset of rows and sweep scales")
    parser.add_argument("--kernel-only", action="store_true",
                        help="skip the cold/warm --bdd-cache sweep section")
    parser.add_argument("--output", default=None, metavar="PATH",
                        help="where to write the JSON report (default: "
                             "BENCH_sweep.json in the repo root; '-' for "
                             "stdout only)")
    parser.add_argument("--before", default=None, metavar="PATH",
                        help="embed a previously captured run under "
                             "'before' for before/after comparison")
    parser.add_argument("--label", default="current",
                        help="label recorded in the report (default: "
                             "current)")
    parser.add_argument("--repeats", type=int, default=2, metavar="N",
                        help="kernel rows report the best of N runs "
                             "(default: 2)")
    arguments = parser.parse_args()

    rows = QUICK_ROWS if arguments.quick else FULL_ROWS
    report = {
        "schema": SCHEMA,
        "label": arguments.label,
        "quick": arguments.quick,
        "python": platform.python_version(),
        "kernel": [],
    }

    print(f"bench: {len(rows)} kernel rows ...")
    for row in rows:
        result = bench_kernel_row(row, repeats=arguments.repeats)
        report["kernel"].append(result)
        rate = result["cache_hit_rate"]
        print(f"  {row:<24} wall={result['wall_s']:8.3f}s "
              f"traversal={result['traversal_s']:8.3f}s "
              f"iters={result['iterations']:<3} "
              f"peak={result['bdd_peak']:<6} "
              f"hit-rate={rate if rate is not None else '-'}")

    print("bench: tracing overhead (no-op span path) ...")
    report["tracing"] = bench_tracing_overhead()
    print(f"  noop-span={report['tracing']['noop_span_ns']}ns "
          f"disabled-overhead="
          f"{report['tracing']['disabled_overhead_pct']}% "
          f"enabled-overhead="
          f"{report['tracing']['enabled_overhead_pct']}%")

    if not arguments.kernel_only:
        sweep = QUICK_SWEEP if arguments.quick else FULL_SWEEP
        print(f"bench: cold vs warm --bdd-cache sweep "
              f"({' '.join(sweep)}) ...")
        report["bdd_cache"] = bench_bdd_cache(sweep)
        print(f"  cold={report['bdd_cache']['cold_s']}s "
              f"warm={report['bdd_cache']['warm_s']}s "
              f"speedup={report['bdd_cache']['speedup']}x")

    if arguments.before:
        with open(arguments.before, encoding="utf-8") as handle:
            report["before"] = json.load(handle)

    text = json.dumps(report, indent=2, sort_keys=True)
    if arguments.output != "-":
        path = arguments.output or os.path.join(REPO_ROOT,
                                                "BENCH_sweep.json")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"bench: wrote {path}")
    else:
        print(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
