"""Shared definitions for the Table 1 reproduction.

The paper's Table 1 reports, for a set of scalable STG benchmarks, the
number of places / signals / states, the peak and final BDD sizes of the
``Reached`` set and the CPU seconds of the three verification phases
(T+C: traversal + consistency, NI-p: non-input persistency (plus the
commutativity / fake-conflict analysis), CSC) and their total.

The original benchmark files are not available, so the rows are drawn from
the scalable families registered in the benchmark corpus
(:data:`repro.corpus.FAMILIES`, backed by :mod:`repro.stg.generators`;
see DESIGN.md §2 for the substitution argument):

* ``muller_pipeline``  -- marked-graph pipeline (the paper's Muller pipeline),
* ``master_read``      -- fork/join marked graph (master-read interface family),
* ``parallel_handshakes`` -- maximal concurrency stress case,
* ``mutex``            -- mutual-exclusion array (Figure 1 generalised),
  checked with its arbitration place declared.

Each row is produced by :func:`run_table1_row`, which executes exactly the
phases of :class:`repro.core.checker.ImplementabilityChecker` and returns
the Table 1 columns.  The instances and their expected verdicts come from
the corpus registry, the single source of truth the ``batch-check`` CLI
mode and the cross-engine tests validate against.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro import corpus
from repro.core.checker import ImplementabilityChecker
from repro.report import ImplementabilityReport
from repro.stg.stg import STG

# (family name, scale parameters) -- the sweep reproduced in Table 1.
TABLE1_ROWS: List[Tuple[str, Sequence[int]]] = [
    ("muller_pipeline", (8, 12, 16, 20)),
    ("master_read", (4, 6, 8)),
    ("parallel_handshakes", (6, 8, 10)),
    ("mutex", (4, 8, 12)),
]

# Smaller sweep used by the pytest-benchmark targets (keeps wall time low).
BENCHMARK_ROWS: List[Tuple[str, Sequence[int]]] = [
    ("muller_pipeline", (8, 12, 16)),
    ("master_read", (4, 6)),
    ("parallel_handshakes", (6, 8)),
    ("mutex", (4, 8)),
]


def build_instance(family: str, scale: int) -> Tuple[STG, List[str]]:
    """Instantiate one benchmark row and its arbitration places."""
    try:
        return corpus.family(family).instantiate(scale)
    except KeyError as error:
        # args[0], not str(error): KeyError.__str__ reprs its argument.
        raise ValueError(error.args[0]) from None


def run_table1_row(family: str, scale: int,
                   ordering: str = "force",
                   traversal_strategy: str = "chained") -> Dict[str, object]:
    """Run the full symbolic check for one row and return its columns."""
    stg, arbitration = build_instance(family, scale)
    checker = ImplementabilityChecker(
        stg, arbitration_places=arbitration, ordering=ordering,
        traversal_strategy=traversal_strategy)
    report = checker.check()
    return report_to_row(family, scale, report)


def report_to_row(family: str, scale: int,
                  report: ImplementabilityReport) -> Dict[str, object]:
    """Convert a report to a Table 1 row dictionary."""
    return {
        "example": f"{family}({scale})",
        "places": report.num_places,
        "signals": report.num_signals,
        "states": report.num_states,
        "bdd_peak": report.bdd_peak_nodes,
        "bdd_final": report.bdd_final_nodes,
        "t_plus_c": report.timings.get("T+C", 0.0),
        "ni_p": report.timings.get("NI-p", 0.0),
        "csc": report.timings.get("CSC", 0.0),
        "total": report.total_time,
        "consistent": report.consistent,
        "persistent": report.output_persistent,
        "csc_holds": report.csc,
        "classification": str(report.classification),
    }


def format_table(rows: List[Dict[str, object]]) -> str:
    """Render rows in the layout of the paper's Table 1."""
    header = (f"{'Example':<24} {'places':>7} {'signals':>8} {'states':>12} "
              f"{'BDD peak':>9} {'BDD fin':>8} "
              f"{'T+C':>8} {'NI-p':>8} {'CSC':>8} {'Total':>8}")
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['example']:<24} {row['places']:>7} {row['signals']:>8} "
            f"{row['states']:>12} {row['bdd_peak']:>9} {row['bdd_final']:>8} "
            f"{row['t_plus_c']:>8.3f} {row['ni_p']:>8.3f} {row['csc']:>8.3f} "
            f"{row['total']:>8.3f}")
    return "\n".join(lines)


def expected_verdicts(family: str) -> Dict[str, Optional[bool]]:
    """The implementability verdicts every row of a family must produce.

    Drawn from the corpus registry (key ``csc`` is renamed to
    ``csc_holds`` to match the Table 1 row layout).
    """
    expected = dict(corpus.family(family).expected)
    expected["csc_holds"] = expected.pop("csc")
    return expected
