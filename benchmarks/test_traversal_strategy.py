"""Ablation C: traversal chaining strategy (Figure 5 vs plain BFS).

The paper's traversal (Figure 5) updates the ``From`` set inside the loop
over transitions ("chaining"), so states found while firing one transition
are immediately available to the next one.  The ablation compares it with
the plain frontier-at-a-time breadth-first image computation.

Run with::

    pytest benchmarks/test_traversal_strategy.py --benchmark-only
"""

import pytest

from repro.core.encoding import SymbolicEncoding
from repro.core.image import SymbolicImage
from repro.core.traversal import STRATEGIES, symbolic_traversal
from repro.stg.generators import master_read, muller_pipeline, mutex_element

CASES = [
    ("muller_pipeline_12", lambda: muller_pipeline(12)),
    ("master_read_6", lambda: master_read(6)),
    ("mutex_8", lambda: mutex_element(8)),
]


@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("name, factory", CASES,
                         ids=[case[0] for case in CASES])
def test_traversal_strategy(benchmark, name, factory, strategy):
    stg = factory()

    def run():
        encoding = SymbolicEncoding(stg)
        image = SymbolicImage(encoding)
        return symbolic_traversal(encoding, image=image, strategy=strategy)

    _, stats = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=0)
    benchmark.extra_info["strategy"] = strategy
    benchmark.extra_info["iterations"] = stats.iterations
    benchmark.extra_info["images"] = stats.images_computed
    benchmark.extra_info["states"] = stats.num_states
    assert stats.num_states > 0


def test_chaining_reduces_iterations():
    """Chained traversal needs no more outer iterations than plain BFS."""
    for _, factory in CASES:
        stg = factory()
        encoding = SymbolicEncoding(stg)
        _, chained = symbolic_traversal(encoding, strategy="chained")
        encoding = SymbolicEncoding(stg)
        _, frontier = symbolic_traversal(encoding, strategy="frontier")
        assert chained.num_states == frontier.num_states
        assert chained.iterations <= frontier.iterations
