"""Benchmark-suite configuration.

The repository root ``conftest.py`` already makes ``src/`` importable;
this file only tunes pytest-benchmark defaults so a full run of
``pytest benchmarks/ --benchmark-only`` stays within a few minutes on a
laptop while still reporting stable medians.
"""

import pytest


def pytest_benchmark_update_machine_info(config, machine_info):
    machine_info["suite"] = "stg-implementability-repro"
