#!/usr/bin/env python3
"""Standalone harness that regenerates the paper's Table 1.

Runs the full symbolic implementability check on every row of the
benchmark suite and prints the same columns as the paper: example size,
number of reachable states, peak/final BDD size of the Reached set and
CPU seconds of the T+C, NI-p and CSC phases plus their total.

Run with::

    python benchmarks/table1_harness.py            # full sweep
    python benchmarks/table1_harness.py --quick    # smaller scales
    python benchmarks/table1_harness.py --json out.json
"""

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), ".."))
sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                "..", "src"))

from benchmarks.table1_common import (  # noqa: E402
    BENCHMARK_ROWS,
    TABLE1_ROWS,
    format_table,
    run_table1_row,
)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="use the reduced scale sweep")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="additionally dump the rows as JSON")
    parser.add_argument("--ordering", default="force",
                        help="variable ordering strategy (default: force)")
    arguments = parser.parse_args()

    rows_spec = BENCHMARK_ROWS if arguments.quick else TABLE1_ROWS
    rows = []
    for family, scales in rows_spec:
        for scale in scales:
            row = run_table1_row(family, scale, ordering=arguments.ordering)
            rows.append(row)
            print(f"done: {row['example']:<24} states={row['states']:<12} "
                  f"total={row['total']:.3f}s", file=sys.stderr)

    print()
    print("Table 1 (reproduced): symbolic verification of scalable STGs")
    print(format_table(rows))
    print()
    print("All rows verified: consistency, persistency and CSC hold "
          "(mutex rows are checked with their arbitration place declared).")

    if arguments.json:
        with open(arguments.json, "w", encoding="utf-8") as handle:
            json.dump(rows, handle, indent=2)
        print(f"rows written to {arguments.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
