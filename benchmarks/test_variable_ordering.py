"""Ablation B: BDD variable-ordering heuristics.

Section 6 of the paper notes that the scalable examples blow up without
"appropriate heuristics for variable ordering".  This benchmark runs the
traversal of the same instances under the four static ordering strategies
of :class:`repro.core.encoding.SymbolicEncoding` and records the peak BDD
size, making the sensitivity (and the advantage of the structural /FORCE
orders over the naive ones) measurable.

Run with::

    pytest benchmarks/test_variable_ordering.py --benchmark-only
"""

import pytest

from repro.core.encoding import ORDERING_STRATEGIES, SymbolicEncoding
from repro.core.image import SymbolicImage
from repro.core.traversal import symbolic_traversal
from repro.stg.generators import master_read, muller_pipeline

CASES = [
    ("muller_pipeline", muller_pipeline, 12),
    ("master_read", master_read, 6),
]


@pytest.mark.parametrize("ordering", ORDERING_STRATEGIES)
@pytest.mark.parametrize("name, factory, scale", CASES,
                         ids=[case[0] for case in CASES])
def test_ordering_strategy(benchmark, name, factory, scale, ordering):
    stg = factory(scale)

    def run():
        encoding = SymbolicEncoding(stg, ordering=ordering)
        image = SymbolicImage(encoding)
        return symbolic_traversal(encoding, image=image)

    _, stats = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=0)
    benchmark.extra_info["ordering"] = ordering
    benchmark.extra_info["bdd_peak"] = stats.peak_nodes
    benchmark.extra_info["bdd_final"] = stats.final_nodes
    benchmark.extra_info["states"] = stats.num_states
    # Whatever the order, the computed state space must be identical.
    expected = 2 ** (scale + 1) if name == "muller_pipeline" else None
    if expected is not None:
        assert stats.num_states == expected


def test_structured_orders_beat_naive_order_on_pipeline():
    """The structural orders must not be worse than the naive baseline."""
    stg = muller_pipeline(12)
    peaks = {}
    for ordering in ORDERING_STRATEGIES:
        encoding = SymbolicEncoding(stg, ordering=ordering)
        image = SymbolicImage(encoding)
        _, stats = symbolic_traversal(encoding, image=image)
        peaks[ordering] = stats.peak_nodes
    assert peaks["force"] <= peaks["declaration"]
    assert peaks["structural"] <= peaks["declaration"]
