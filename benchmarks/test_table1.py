"""Table 1 reproduction (pytest-benchmark targets).

Each benchmark runs the complete symbolic implementability check
(traversal + consistency, persistency + fake conflicts, CSC +
reducibility) on one row of the benchmark suite and records the Table 1
columns (state count, peak/final BDD size, per-phase seconds) in
``extra_info`` so they appear in the saved benchmark JSON.

Run with::

    pytest benchmarks/test_table1.py --benchmark-only
"""

import pytest

from benchmarks.table1_common import (
    BENCHMARK_ROWS,
    build_instance,
    expected_verdicts,
    report_to_row,
    run_table1_row,
)
from repro.core.checker import ImplementabilityChecker

CASES = [(family, scale) for family, scales in BENCHMARK_ROWS
         for scale in scales]


@pytest.mark.parametrize("family, scale", CASES,
                         ids=[f"{family}_{scale}" for family, scale in CASES])
def test_table1_row(benchmark, family, scale):
    """Benchmark the full symbolic check of one Table 1 row."""
    stg, arbitration = build_instance(family, scale)

    def run():
        checker = ImplementabilityChecker(stg, arbitration_places=arbitration)
        return checker.check()

    report = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=0)
    row = report_to_row(family, scale, report)
    benchmark.extra_info.update(row)

    # The check must actually succeed -- a benchmark of a failing
    # verification would be meaningless.
    verdicts = expected_verdicts(family)
    assert row["consistent"] is verdicts["consistent"]
    assert row["persistent"] is verdicts["persistent"]
    assert row["csc_holds"] is verdicts["csc_holds"]
    assert row["states"] > 0
    assert row["bdd_peak"] >= row["bdd_final"]


@pytest.mark.parametrize("family, scale", [("muller_pipeline", 16),
                                           ("parallel_handshakes", 10)],
                         ids=["pipeline_16", "parallel_10"])
def test_traversal_only_large(benchmark, family, scale):
    """Benchmark only the traversal phase on the largest instances.

    Shows that the reachable set of millions of states is computed in
    seconds -- the headline claim of the paper's evaluation.
    """
    from repro.core.encoding import SymbolicEncoding
    from repro.core.image import SymbolicImage
    from repro.core.traversal import symbolic_traversal

    stg, _ = build_instance(family, scale)

    def run():
        encoding = SymbolicEncoding(stg)
        image = SymbolicImage(encoding)
        return symbolic_traversal(encoding, image=image)

    _, stats = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=0)
    benchmark.extra_info.update(stats.as_dict())
    assert stats.num_states >= 2 ** scale
