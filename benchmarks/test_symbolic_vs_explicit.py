"""Ablation A: symbolic traversal vs explicit enumeration.

The paper's motivation: explicit state enumeration explodes with the
degree of concurrency while the symbolic representation does not.  This
benchmark runs both engines on the same Muller-pipeline and
parallel-handshake instances (sized so the explicit engine is still
feasible) and records the state counts, so the growth trend and the
crossover are visible in the benchmark report.

Run with::

    pytest benchmarks/test_symbolic_vs_explicit.py --benchmark-only
"""

import pytest

from repro.core.encoding import SymbolicEncoding
from repro.core.image import SymbolicImage
from repro.core.traversal import symbolic_traversal
from repro.sg import build_state_graph
from repro.stg.generators import muller_pipeline, parallel_handshakes

PIPELINE_SIZES = (8, 10, 12)
PARALLEL_SIZES = (4, 6)


@pytest.mark.parametrize("stages", PIPELINE_SIZES,
                         ids=[f"pipeline_{n}" for n in PIPELINE_SIZES])
def test_explicit_enumeration_pipeline(benchmark, stages):
    stg = muller_pipeline(stages)

    def run():
        return build_state_graph(stg).graph

    graph = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=0)
    benchmark.extra_info["states"] = graph.num_states
    benchmark.extra_info["engine"] = "explicit"
    assert graph.num_states == 2 ** (stages + 1)


@pytest.mark.parametrize("stages", PIPELINE_SIZES,
                         ids=[f"pipeline_{n}" for n in PIPELINE_SIZES])
def test_symbolic_traversal_pipeline(benchmark, stages):
    stg = muller_pipeline(stages)

    def run():
        encoding = SymbolicEncoding(stg)
        image = SymbolicImage(encoding)
        return symbolic_traversal(encoding, image=image)

    _, stats = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=0)
    benchmark.extra_info["states"] = stats.num_states
    benchmark.extra_info["bdd_final"] = stats.final_nodes
    benchmark.extra_info["engine"] = "symbolic"
    assert stats.num_states == 2 ** (stages + 1)


@pytest.mark.parametrize("channels", PARALLEL_SIZES,
                         ids=[f"parallel_{n}" for n in PARALLEL_SIZES])
def test_explicit_enumeration_parallel(benchmark, channels):
    stg = parallel_handshakes(channels)

    def run():
        return build_state_graph(stg).graph

    graph = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=0)
    benchmark.extra_info["states"] = graph.num_states
    benchmark.extra_info["engine"] = "explicit"
    assert graph.num_states == 4 ** channels


@pytest.mark.parametrize("channels", PARALLEL_SIZES,
                         ids=[f"parallel_{n}" for n in PARALLEL_SIZES])
def test_symbolic_traversal_parallel(benchmark, channels):
    stg = parallel_handshakes(channels)

    def run():
        encoding = SymbolicEncoding(stg)
        image = SymbolicImage(encoding)
        return symbolic_traversal(encoding, image=image)

    _, stats = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=0)
    benchmark.extra_info["states"] = stats.num_states
    benchmark.extra_info["bdd_final"] = stats.final_nodes
    benchmark.extra_info["engine"] = "symbolic"
    assert stats.num_states == 4 ** channels
