"""Legacy setuptools entry point.

The canonical build configuration lives in ``pyproject.toml``.  This file
exists so that editable installs keep working on offline machines that lack
the ``wheel`` package (PEP 660 editable wheels cannot be built there)::

    pip install -e . --no-build-isolation --no-use-pep517
"""

from setuptools import setup

setup()
